open Vir

(* Member kinds of a generalized superblock chain, recorded in the rule
   so statistics and tests can see the shape that matched. *)
type member =
  | M_ibinop
  | M_fbinop
  | M_icmp
  | M_fcmp
  | M_select
  | M_cast
  | M_gep
  | M_load
  | M_store
  | M_reduce

let member_name = function
  | M_ibinop -> "ibinop"
  | M_fbinop -> "fbinop"
  | M_icmp -> "icmp"
  | M_fcmp -> "fcmp"
  | M_select -> "select"
  | M_cast -> "cast"
  | M_gep -> "gep"
  | M_load -> "load"
  | M_store -> "store"
  | M_reduce -> "reduce"

type rule =
  | R_fbinop_fbinop
  | R_ibinop_ibinop
  | R_icmp_select
  | R_fcmp_select
  | R_cast_binop
  | R_gep_load
  | R_gep_store
  | R_load_binop
  | R_binop_store
  | R_load_binop_store
  | R_superblock of member list
      (** arbitrary-length linked run (length >= 2); a trailing
          [M_reduce] member marks a fused reduction tail *)

let rule_name = function
  | R_fbinop_fbinop -> "fbinop_fbinop"
  | R_ibinop_ibinop -> "ibinop_ibinop"
  | R_icmp_select -> "icmp_select"
  | R_fcmp_select -> "fcmp_select"
  | R_cast_binop -> "cast_binop"
  | R_gep_load -> "gep_load"
  | R_gep_store -> "gep_store"
  | R_load_binop -> "load_binop"
  | R_binop_store -> "binop_store"
  | R_load_binop_store -> "load_binop_store"
  | R_superblock ms -> (
    match List.rev ms with
    | M_reduce :: _ -> "reduce_tail"
    | _ -> "superblock")

(* Representative superblock shapes so [rule_stats] (which filters by
   [all_rules] names) reports the two new buckets. *)
let all_rules =
  [
    R_fbinop_fbinop; R_ibinop_ibinop; R_icmp_select; R_fcmp_select;
    R_cast_binop; R_gep_load; R_gep_store; R_load_binop; R_binop_store;
    R_load_binop_store;
    R_superblock [ M_fbinop; M_fbinop; M_fbinop ];
    R_superblock [ M_fbinop; M_reduce ];
  ]

type chain = { c_block : string; c_start : int; c_len : int; c_rule : rule }

(* The execution body of a block as the threaded backend sees it: phis
   run at block entry and the terminator last, whatever their physical
   position, so chain adjacency is adjacency in this filtered list. *)
let is_body_instr (i : Instr.t) =
  match i.Instr.op with
  | Instr.Phi _ | Instr.Br _ | Instr.Condbr _ | Instr.Ret _
  | Instr.Unreachable ->
    false
  | _ -> true

let uses_reg_op (o : Instr.operand) r =
  match o with Instr.Reg (r', _) -> r' = r | Instr.Imm _ -> false

(* [p]'s result is consumed by [c] and nothing else: exactly one textual
   use in the whole function, and it is (physically) instruction [c].
   One entry per occurrence in [Defuse.uses_of], so [op %r %r] yields
   two sites and is rejected here. *)
let links du (p : Instr.t) (c : Instr.t) =
  Instr.defines p
  &&
  match Defuse.uses_of du p.Instr.id with
  | [ site ] -> site.Defuse.u_instr == c
  | _ -> false

(* Kind of [i] as a potential chain member ([None] = never fusible:
   allocas, lane shuffles, non-reduce calls, …). *)
let member_of (i : Instr.t) : member option =
  match i.Instr.op with
  | Instr.Ibinop _ -> Some M_ibinop
  | Instr.Fbinop _ -> Some M_fbinop
  | Instr.Icmp _ -> Some M_icmp
  | Instr.Fcmp _ -> Some M_fcmp
  | Instr.Select _ -> Some M_select
  | Instr.Cast _ -> Some M_cast
  | Instr.Gep _ -> Some M_gep
  | Instr.Load _ -> Some M_load
  | Instr.Store _ -> Some M_store
  | Instr.Call (n, [ _ ]) -> (
    match Intrinsics.lookup n with
    | Some { Intrinsics.kind = Intrinsics.Reduce _; _ } -> Some M_reduce
    | _ -> None)
  | _ -> None

(* May the linked pair (p -> c) be consecutive chain members? [links]
   already guarantees p's result is read exactly once, by c; this
   checks the structural shapes the emitter supports:
   - a gep's consumer must be the memory access it addresses;
   - a load's address must come from a gep (an address arriving in a
     plain register is read straight from the register file — nothing
     to fuse);
   - a store is linked through its *value* operand (through its pointer
     only from a gep), and terminates the chain (void result);
   - a reduce intrinsic consumes the full vector and terminates the
     chain. *)
let link_shape_ok (p : Instr.t) (c : Instr.t) =
  let r = p.Instr.id in
  match (p.Instr.op, c.Instr.op) with
  | (Instr.Store _ | Instr.Call _), _ -> false (* void / chain-final *)
  | Instr.Gep _, Instr.Load addr -> uses_reg_op addr r
  | Instr.Gep _, Instr.Store (v, ptr) ->
    uses_reg_op ptr r && not (uses_reg_op v r)
  | Instr.Gep _, _ -> false
  | _, Instr.Load _ -> false
  | _, Instr.Store (v, _) -> uses_reg_op v r
  | _, _ -> true

(* Classify an adjacent, def-use-linked (producer, consumer) pair
   against the PR 7 peephole rules (kept as named rules: each has a
   specialized two-member kernel in the emitter and its own
   differential property). *)
let pair_rule (p : Instr.t) (c : Instr.t) : rule option =
  let r = p.Instr.id in
  match (p.Instr.op, c.Instr.op) with
  | Instr.Fbinop _, Instr.Fbinop _ -> Some R_fbinop_fbinop
  | Instr.Ibinop _, Instr.Ibinop _ -> Some R_ibinop_ibinop
  | Instr.Icmp _, Instr.Select (cond, _, _) when uses_reg_op cond r ->
    Some R_icmp_select
  | Instr.Fcmp _, Instr.Select (cond, _, _) when uses_reg_op cond r ->
    Some R_fcmp_select
  | Instr.Cast _, (Instr.Ibinop _ | Instr.Fbinop _) -> Some R_cast_binop
  | Instr.Gep _, Instr.Load addr when uses_reg_op addr r -> Some R_gep_load
  | Instr.Gep _, Instr.Store (_, ptr) when uses_reg_op ptr r ->
    Some R_gep_store
  | Instr.Load _, (Instr.Ibinop _ | Instr.Fbinop _) -> Some R_load_binop
  | (Instr.Ibinop _ | Instr.Fbinop _), Instr.Store (v, _) when uses_reg_op v r
    ->
    Some R_binop_store
  | _ -> None

let member_kinds (body : Instr.t array) s len =
  List.init len (fun k -> Option.get (member_of body.(s + k)))

let find (f : Func.t) : chain list =
  let du = Defuse.build f in
  let out = ref [] in
  List.iter
    (fun (b : Block.t) ->
      let body = Array.of_list (List.filter is_body_instr b.Block.instrs) in
      let n = Array.length body in
      let extendable j =
        j + 1 < n
        &&
        let p = body.(j) and c = body.(j + 1) in
        member_of p <> None && member_of c <> None
        && links du p c && link_shape_ok p c
      in
      let j = ref 0 in
      while !j < n - 1 do
        (* Grow the maximal linked run starting at !j. *)
        let k = ref !j in
        while extendable !k do
          incr k
        done;
        let len = !k - !j + 1 in
        if len < 2 then incr j
        else begin
          let s = !j in
          let rule =
            match (len, body.(s).Instr.op, body.(s + len - 1).Instr.op) with
            | 2, _, _ -> (
              match pair_rule body.(s) body.(s + 1) with
              | Some r -> Some r
              | None -> Some (R_superblock (member_kinds body s 2)))
            | 3, Instr.Load _, Instr.Store _ -> (
              (* the PR 7 three-member peephole, position-checked *)
              match body.(s + 1).Instr.op with
              | Instr.Ibinop _ | Instr.Fbinop _ ->
                Some R_load_binop_store
              | _ -> Some (R_superblock (member_kinds body s 3)))
            | _ -> Some (R_superblock (member_kinds body s len))
          in
          (match rule with
          | Some c_rule ->
            out := { c_block = b.Block.label; c_start = s; c_len = len; c_rule } :: !out
          | None -> ());
          j := !j + len
        end
      done)
    f.Func.blocks;
  List.rev !out

open Vir

type rule =
  | R_fbinop_fbinop
  | R_ibinop_ibinop
  | R_icmp_select
  | R_fcmp_select
  | R_cast_binop
  | R_gep_load
  | R_gep_store
  | R_load_binop
  | R_binop_store
  | R_load_binop_store

let rule_name = function
  | R_fbinop_fbinop -> "fbinop_fbinop"
  | R_ibinop_ibinop -> "ibinop_ibinop"
  | R_icmp_select -> "icmp_select"
  | R_fcmp_select -> "fcmp_select"
  | R_cast_binop -> "cast_binop"
  | R_gep_load -> "gep_load"
  | R_gep_store -> "gep_store"
  | R_load_binop -> "load_binop"
  | R_binop_store -> "binop_store"
  | R_load_binop_store -> "load_binop_store"

let all_rules =
  [
    R_fbinop_fbinop; R_ibinop_ibinop; R_icmp_select; R_fcmp_select;
    R_cast_binop; R_gep_load; R_gep_store; R_load_binop; R_binop_store;
    R_load_binop_store;
  ]

type chain = { c_block : string; c_start : int; c_len : int; c_rule : rule }

(* The execution body of a block as the threaded backend sees it: phis
   run at block entry and the terminator last, whatever their physical
   position, so chain adjacency is adjacency in this filtered list. *)
let is_body_instr (i : Instr.t) =
  match i.Instr.op with
  | Instr.Phi _ | Instr.Br _ | Instr.Condbr _ | Instr.Ret _
  | Instr.Unreachable ->
    false
  | _ -> true

let uses_reg_op (o : Instr.operand) r =
  match o with Instr.Reg (r', _) -> r' = r | Instr.Imm _ -> false

(* [p]'s result is consumed by [c] and nothing else: exactly one textual
   use in the whole function, and it is (physically) instruction [c].
   One entry per occurrence in [Defuse.uses_of], so [op %r %r] yields
   two sites and is rejected here. *)
let links du (p : Instr.t) (c : Instr.t) =
  Instr.defines p
  &&
  match Defuse.uses_of du p.Instr.id with
  | [ site ] -> site.Defuse.u_instr == c
  | _ -> false

(* Classify an adjacent, def-use-linked (producer, consumer) pair. *)
let pair_rule (p : Instr.t) (c : Instr.t) : rule option =
  let r = p.Instr.id in
  match (p.Instr.op, c.Instr.op) with
  | Instr.Fbinop _, Instr.Fbinop _ -> Some R_fbinop_fbinop
  | Instr.Ibinop _, Instr.Ibinop _ -> Some R_ibinop_ibinop
  | Instr.Icmp _, Instr.Select (cond, _, _) when uses_reg_op cond r ->
    Some R_icmp_select
  | Instr.Fcmp _, Instr.Select (cond, _, _) when uses_reg_op cond r ->
    Some R_fcmp_select
  | Instr.Cast _, (Instr.Ibinop _ | Instr.Fbinop _) -> Some R_cast_binop
  | Instr.Gep _, Instr.Load addr when uses_reg_op addr r -> Some R_gep_load
  | Instr.Gep _, Instr.Store (_, ptr) when uses_reg_op ptr r ->
    Some R_gep_store
  | Instr.Load _, (Instr.Ibinop _ | Instr.Fbinop _) -> Some R_load_binop
  | (Instr.Ibinop _ | Instr.Fbinop _), Instr.Store (v, _) when uses_reg_op v r
    ->
    Some R_binop_store
  | _ -> None

let find (f : Func.t) : chain list =
  let du = Defuse.build f in
  let out = ref [] in
  List.iter
    (fun (b : Block.t) ->
      let body = Array.of_list (List.filter is_body_instr b.Block.instrs) in
      let n = Array.length body in
      let j = ref 0 in
      while !j < n - 1 do
        let p = body.(!j) and c = body.(!j + 1) in
        let triple =
          !j + 2 < n
          &&
          let s = body.(!j + 2) in
          (match (p.Instr.op, c.Instr.op, s.Instr.op) with
          | Instr.Load _, (Instr.Ibinop _ | Instr.Fbinop _), Instr.Store (v, _)
            ->
            uses_reg_op v c.Instr.id
          | _ -> false)
          && links du p c
          && links du c body.(!j + 2)
        in
        if triple then begin
          out :=
            {
              c_block = b.Block.label;
              c_start = !j;
              c_len = 3;
              c_rule = R_load_binop_store;
            }
            :: !out;
          j := !j + 3
        end
        else
          match if links du p c then pair_rule p c else None with
          | Some rule ->
            out :=
              {
                c_block = b.Block.label;
                c_start = !j;
                c_len = 2;
                c_rule = rule;
              }
              :: !out;
            j := !j + 2
          | None -> incr j
      done)
    f.Func.blocks;
  List.rev !out

(** Block-local dependence graphs for the list scheduler.

    A block body (the non-phi, non-terminator sequence, in threaded
    execution order) splits into pinned {e fences} — anything that can
    trap, touch memory, or call out, including every [__vulfi_*]
    injection call — and {e movable} pure instructions, reorderable
    within their fence-delimited region subject to RAW register
    dependences. See DESIGN.md, "Scheduler legality". *)

val movable : Vir.Instr.t -> bool
(** Pure, non-trapping, register-only: may be reordered. Everything
    else (loads, stores, calls, allocas, integer divides, extract/insert
    with a dynamic — hence trappable — lane index, phis, terminators) is
    a fence that nothing crosses, in either direction. *)

type region = { r_lo : int; r_hi : int }
(** A maximal fence-free run of body indices, half-open [lo, hi). *)

val regions : Vir.Instr.t array -> region list
(** Maximal movable runs of a body, left to right. *)

type graph = {
  g_region : region;
  g_preds : int list array;
      (** RAW predecessors, indexed by [body_index - r_lo] *)
  g_succs : int list array;
}

val build_region : Vir.Instr.t array -> region -> graph
(** Direct register dependences between instructions of one region.
    Under verified SSA these are the only hazards — every instruction
    defines a fresh register, so no WAR/WAW edges exist. *)

val respects : Vir.Instr.t array -> Vir.Instr.t array -> bool
(** [respects original candidate]: is [candidate] a permutation of
    [original] that keeps every fence at its original index, keeps
    every movable inside its region, and orders every region-internal
    RAW edge producer-first? The scheduler's postcondition, also used
    by the qcheck property in the test suite. *)

(** Greedy list scheduler over {!Deps} regions.

    Goal: make single-use producer→consumer runs physically adjacent so
    {!Chains.find} sees longer superblocks, without crossing any fence
    (see {!Deps.movable} for the legality argument). Within each region
    the scheduler emits instructions one at a time:

    - after emitting a producer whose result has exactly one textual
      use, and that use is ready (all its other region dependences
      emitted), the consumer is emitted next — this is what glues
      chains together;
    - otherwise the ready instruction with the smallest original index
      is emitted, except that instructions on a single-use chain
      feeding the region-ending fence (a store's address gep, a
      compare feeding a pinned select tail, …) are *delayed* to the
      end of the region, so they end up adjacent to the fence that
      consumes them and peepholes like gep→load / gep→store keep
      firing.

    The result is deterministic (ties break on original index) and is
    checked against {!Deps.respects} — a violation is a scheduler bug
    and raises. *)

open Vir

(* The single in-function use of [p]'s result, if there is exactly
   one. *)
let single_use du (p : Instr.t) : Instr.t option =
  if not (Instr.defines p) then None
  else
    match Defuse.uses_of du p.Instr.id with
    | [ site ] -> Some site.Defuse.u_instr
    | _ -> None

(* Body indices (region-relative) of instructions on a single-use chain
   whose sink is [fence]: walk the fence's register operands backwards
   while each link is single-use and in-region. *)
let late_set du (body : Instr.t array) (r : Deps.region)
    (fence : Instr.t option) : bool array =
  let size = r.Deps.r_hi - r.Deps.r_lo in
  let late = Array.make size false in
  (match fence with
  | None -> ()
  | Some fence ->
    let index_of = Hashtbl.create (2 * size) in
    for k = r.Deps.r_lo to r.Deps.r_hi - 1 do
      let i = body.(k) in
      if Instr.defines i then Hashtbl.replace index_of i.Instr.id k
    done;
    let rec walk (consumer : Instr.t) =
      List.iter
        (fun reg ->
          match Hashtbl.find_opt index_of reg with
          | Some k when not late.(k - r.Deps.r_lo) -> (
            let p = body.(k) in
            match single_use du p with
            | Some u when u == consumer ->
              late.(k - r.Deps.r_lo) <- true;
              walk p
            | _ -> ())
          | _ -> ())
        (Instr.uses consumer)
    in
    walk fence);
  late

let schedule_region du (body : Instr.t array) (g : Deps.graph)
    (fence : Instr.t option) : Instr.t array =
  let r = g.Deps.g_region in
  let lo = r.Deps.r_lo in
  let size = r.Deps.r_hi - lo in
  let indeg = Array.map List.length g.Deps.g_preds in
  let late = late_set du body r fence in
  let emitted = Array.make size false in
  let out = Array.make size body.(lo) in
  (* Ready = not emitted, indeg 0. Selection is O(size) per step;
     regions are small (tens of instructions). *)
  let pick_default () =
    let best = ref (-1) in
    for k = size - 1 downto 0 do
      if (not emitted.(k)) && indeg.(k) = 0 then
        if
          !best = -1
          || (not late.(k) && late.(!best))
          || (late.(k) = late.(!best) && k < !best)
        then best := k
    done;
    !best
  in
  let emit k pos =
    emitted.(k) <- true;
    out.(pos) <- body.(lo + k);
    List.iter (fun s -> indeg.(s) <- indeg.(s) - 1) g.Deps.g_succs.(k)
  in
  let pos = ref 0 in
  let last = ref (-1) in
  while !pos < size do
    let k =
      (* Chain-follow: the last emitted instruction's single consumer,
         if it lives in this region and is ready. Overrides the late
         flag — getting chain members adjacent is the whole point. *)
      let followed =
        if !last < 0 then -1
        else
          match single_use du body.(lo + !last) with
          | Some c -> (
            let found = ref (-1) in
            List.iter
              (fun s ->
                if body.(lo + s) == c && (not emitted.(s)) && indeg.(s) = 0
                then found := s)
              g.Deps.g_succs.(!last);
            !found)
          | None -> -1
      in
      if followed >= 0 then followed else pick_default ()
    in
    assert (k >= 0);
    emit k !pos;
    last := k;
    incr pos
  done;
  out

(* Schedule one body (the non-phi, non-terminator instruction sequence
   of a block, in execution order). [fence_after r] is the instruction
   pinning the region's right edge: the next body instruction, or the
   block terminator for the last region. Returns the scheduled body and
   the number of instructions that changed position. *)
let schedule_body du ?(terminator : Instr.t option)
    (body : Instr.t array) : Instr.t array * int =
  let out = Array.copy body in
  List.iter
    (fun (r : Deps.region) ->
      let g = Deps.build_region body r in
      let fence =
        if r.Deps.r_hi < Array.length body then Some body.(r.Deps.r_hi)
        else terminator
      in
      let scheduled = schedule_region du body g fence in
      Array.blit scheduled 0 out r.Deps.r_lo (r.Deps.r_hi - r.Deps.r_lo))
    (Deps.regions body);
  if not (Deps.respects body out) then
    invalid_arg "Sched.schedule_body: dependence violation (scheduler bug)";
  let moves = ref 0 in
  Array.iteri (fun k i -> if out.(k) != i then incr moves) body;
  (out, !moves)

(* Schedule every block of [f] in place: phis keep their (entry)
   position, the terminator stays last, the body is rewritten in
   scheduled order. Returns the total move count. *)
let schedule_func (f : Func.t) : int =
  let du = Defuse.build f in
  List.fold_left
    (fun acc (b : Block.t) ->
      let phis, rest = List.partition Instr.is_phi b.Block.instrs in
      let body, terms = List.partition (fun i -> not (Instr.is_terminator i)) rest in
      let arr = Array.of_list body in
      let terminator = match terms with t :: _ -> Some t | [] -> None in
      let scheduled, moves = schedule_body du ?terminator arr in
      if moves > 0 then
        b.Block.instrs <- phis @ Array.to_list scheduled @ terms;
      acc + moves)
    0 f.Func.blocks

(** Block-local dependence graphs for the list scheduler.

    The unit of analysis is a block's execution body — the non-phi,
    non-terminator instruction sequence, exactly the order the threaded
    backend runs (see {!Chains.is_body_instr}). The graph partitions the
    body into *fence* instructions, whose position is frozen, and
    *movable* instructions, which may be permuted within their
    fence-delimited region subject to register data dependences.

    Fences are everything that can trap, touch memory, or transfer to
    foreign code: loads, stores, allocas, the integer divide/remainder
    family, and every call (module functions, intrinsics and externs —
    which covers the [__vulfi_*] injection API and the [__det_*]
    detector hooks, so instrumented fault sites pin the order of the
    code around them). A fence is a full barrier in both directions:
    the set of instructions executed before any potential trap point is
    then invariant under scheduling, which keeps dynamic instruction
    counts, trap kinds/operands, injected values and checkpoint states
    byte-identical between scheduled and unscheduled campaigns
    (DESIGN.md, "Scheduler legality"). *)

open Vir

(* Pure, non-trapping, register-only instructions. Everything else is a
   fence. [Frem]/[Fdiv] are IEEE (inf/nan, never a trap); the integer
   divide family traps on zero and stays pinned. [Gep] is plain address
   arithmetic — the memory access it feeds is a separate instruction.
   [Shufflevector] masks are statically bounds-checked by the verifier;
   extract/insert lane indices are NOT (a register index — possibly
   fault-corrupted — traps with [Invalid_lane] at run time), so those
   move only when the index is an immediate provably inside the vector's
   static lane count. *)
let static_lane_ok (vec : Instr.operand) (ix : Instr.operand) =
  match ix with
  | Instr.Imm (Const.Cint (_, v)) ->
    v >= 0L && v < Int64.of_int (Vtype.lanes (Instr.operand_ty vec))
  | _ -> false

let movable (i : Instr.t) =
  match i.Instr.op with
  | Instr.Ibinop ((Instr.Sdiv | Instr.Srem | Instr.Udiv | Instr.Urem), _, _)
    ->
    false
  | Instr.Extractelement (v, ix) -> static_lane_ok v ix
  | Instr.Insertelement (v, _, ix) -> static_lane_ok v ix
  | Instr.Ibinop _ | Instr.Fbinop _ | Instr.Icmp _ | Instr.Fcmp _
  | Instr.Select _ | Instr.Cast _ | Instr.Gep _ | Instr.Shufflevector _ ->
    true
  | Instr.Alloca _ | Instr.Load _ | Instr.Store _ | Instr.Call _
  | Instr.Phi _ | Instr.Br _ | Instr.Condbr _ | Instr.Ret _
  | Instr.Unreachable ->
    false

(* A maximal run of movable instructions: body indices [lo, hi)
   (half-open) with no fence inside. *)
type region = { r_lo : int; r_hi : int }

let regions (body : Instr.t array) : region list =
  let n = Array.length body in
  let out = ref [] in
  let lo = ref 0 in
  for k = 0 to n - 1 do
    if not (movable body.(k)) then begin
      if k > !lo then out := { r_lo = !lo; r_hi = k } :: !out;
      lo := k + 1
    end
  done;
  if n > !lo then out := { r_lo = !lo; r_hi = n } :: !out;
  List.rev !out

(* Direct register (RAW) dependences inside one region: an edge j -> k
   (both body indices, j < k by SSA) whenever instruction k reads the
   register defined by instruction j. Under verified SSA there are no
   WAR or WAW hazards — every instruction defines a fresh register. *)
type graph = {
  g_region : region;
  g_preds : int list array;  (** per body index (offset by r_lo) *)
  g_succs : int list array;
}

let build_region (body : Instr.t array) (r : region) : graph =
  let size = r.r_hi - r.r_lo in
  let def_at = Hashtbl.create (2 * size) in
  for k = r.r_lo to r.r_hi - 1 do
    let i = body.(k) in
    if Instr.defines i then Hashtbl.replace def_at i.Instr.id k
  done;
  let preds = Array.make size [] and succs = Array.make size [] in
  for k = r.r_lo to r.r_hi - 1 do
    List.iter
      (fun reg ->
        match Hashtbl.find_opt def_at reg with
        | Some j when j <> k ->
          preds.(k - r.r_lo) <- (j - r.r_lo) :: preds.(k - r.r_lo);
          succs.(j - r.r_lo) <- (k - r.r_lo) :: succs.(j - r.r_lo)
        | _ -> ())
      (Instr.uses body.(k))
  done;
  { g_region = r; g_preds = preds; g_succs = succs }

(* Does [candidate] respect every dependence of [original]? Both are
   full bodies; [candidate] must be a permutation of [original] that
   keeps every fence at its original index and orders every in-region
   RAW edge producer-first. Used by the scheduler's own postcondition
   check and by the qcheck property in the test suite. *)
let respects (original : Instr.t array) (candidate : Instr.t array) : bool =
  let n = Array.length original in
  Array.length candidate = n
  &&
  (* same multiset, by physical identity *)
  let seen = Hashtbl.create (2 * n) in
  Array.iteri (fun k i -> Hashtbl.replace seen (Obj.repr i) k) candidate;
  (try
     Array.iter
       (fun i -> if not (Hashtbl.mem seen (Obj.repr i)) then raise Exit)
       original;
     true
   with Exit -> false)
  &&
  (* fences pinned *)
  (try
     Array.iteri
       (fun k i ->
         if not (movable i) && candidate.(k) != i then raise Exit)
       original;
     true
   with Exit -> false)
  &&
  (* region-internal RAW edges stay producer-first, and movables stay
     inside their region *)
  let pos_of i = Hashtbl.find seen (Obj.repr i) in
  List.for_all
    (fun r ->
      let ok = ref true in
      for k = r.r_lo to r.r_hi - 1 do
        let p = pos_of original.(k) in
        if p < r.r_lo || p >= r.r_hi then ok := false;
        List.iter
          (fun reg ->
            for j = r.r_lo to r.r_hi - 1 do
              let d = original.(j) in
              if
                j <> k && Instr.defines d
                && d.Instr.id = reg
                && pos_of d >= p
              then ok := false
            done)
          (Instr.uses original.(k))
      done;
      !ok)
    (regions original)

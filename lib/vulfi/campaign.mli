(** Fault-injection campaigns (paper §IV-D): repeated batches of
    experiments with t-based convergence of the SDC-rate estimate. *)

type config = {
  experiments_per_campaign : int;  (** 100 in the paper *)
  min_campaigns : int;
  max_campaigns : int;
  margin_target : float;  (** stop when the 95% margin falls below *)
  seed : int;  (** master seed: campaigns are fully reproducible *)
}

(** The paper's protocol: 100-experiment campaigns, at least 20, ±3%
    margin at 95% confidence. *)
val paper_config : config

(** A scaled-down configuration for quick harness runs. *)
val quick_config : config

type totals = {
  n_experiments : int;
  n_sdc : int;
  n_benign : int;
  n_crash : int;
  n_detected : int;  (** runs flagged by a detector *)
  n_detected_sdc : int;  (** SDC runs flagged by a detector *)
}

type result = {
  c_workload : string;
  c_target : Vir.Target.t;
  c_category : Analysis.Sites.category;
  c_campaigns : int;
  c_sdc_rates : float list;  (** one sample per campaign *)
  c_totals : totals;
  c_margin : float;  (** final 95% margin of error on the SDC rate *)
  c_near_normal : bool;  (** sample distribution near normal? *)
  c_static_sites : int;
  c_avg_dynamic_sites : float;
  c_avg_dynamic_instrs : float;
  c_golden_runs : int;
      (** distinct inputs the schedule drew — the golden runs any
          executor must perform at least once *)
  c_golden_reused : int;
      (** experiments that reused a cached golden run. Both counters
          are functions of the seed schedule alone, so they are
          identical between the legacy and checkpointed executors,
          sequential or [-j N]. *)
  c_checkpoints : int;
      (** machine-state checkpoints the fast-forward executor lays for
          this cell (summed over the distinct scheduled inputs) *)
  c_ff_resumed : int;
      (** experiments whose injection site is at or past the first
          checkpoint of its input's plan — the runs the fast-forward
          executor resumes rather than replays. Like the golden
          counters, both are pure functions of the seed schedule (not
          of what any executor physically did), so every executor
          reports the same values and traces stay byte-identical
          across executors. *)
  c_pruned : int;
      (** experiments with at least one plan checkpoint site strictly
          after their injection site — the runs the converge-pruned
          executor can terminate early (the physical prune count is
          bench-only telemetry, {!Experiment.prune_stats}) *)
  c_prune_checks : int;
      (** total (experiment, plan site) pairs with the site strictly
          after the injection site — the convergence comparisons the
          converge-pruned executor can at most perform. Both are pure
          functions of the seed schedule, reported identically by all
          four executors. *)
}

(** JSON view of a result: the per-cell summary record of a trace, and
    the cell entry of the RESULTS_*.json exports (see {!Trace}).
    [detectors] (default false) records whether detector hooks were
    attached during the campaign. *)
val result_json : ?detectors:bool -> result -> Json.t

val sdc_rate : result -> float
val benign_rate : result -> float
val crash_rate : result -> float

(** Fraction of SDC-producing experiments that a detector flagged — the
    paper's "SDC detection rate" (Fig 12). *)
val sdc_detection_rate : result -> float

(** Detector hooks are stateful, so the campaign machinery takes a
    factory and builds a fresh record for every run — experiments never
    share detector state, sequentially or across domains. *)
type hooks_factory = unit -> Experiment.hooks

(** The four executors a campaign can run on. All produce bit-identical
    results, digests and traces; they differ only in how much work each
    experiment repeats.

    - [Legacy] is the paper's §IV-B protocol taken literally: every
      experiment performs its own fault-free profiling run on a freshly
      built machine before the faulty run.
    - [Checkpointed] runs [w_setup] once per (cell, input), snapshots
      the post-setup memory image and executes the golden run once;
      every further experiment on that input restores the snapshot and
      reuses the machine.
    - [Fast_forward] additionally lays full machine-state checkpoints
      (memory image, register frames, call stack, dynamic counters) at
      the scheduled injection sites during one instrumented golden
      replay per (cell, input), and resumes every faulty run from the
      nearest checkpoint at or before its injection site, executing
      only the post-injection suffix. Campaigns run their experiments
      in injection-sorted order (results and traces are emitted in
      experiment order regardless).
    - [Converge_pruned] rides the fast-forward machinery and runs each
      faulty suffix under position tracking, comparing the machine
      against the golden state at every later checkpoint site
      ({!Interp.Machine.state_equal}); on a match it terminates
      immediately and splices the golden outcome, which is provably
      identical to running the suffix out (DESIGN.md, convergence
      soundness). [VULFI_NO_PRUNE=1] degrades it to plain fast-forward
      for cross-checks without changing any result or trace byte.

    When detector hooks are attached, [Fast_forward] and
    [Converge_pruned] degrade to [Checkpointed] — detector state lives
    outside the machine and would not be restored by a checkpoint — with
    a one-line stderr notice (once per process); the effective executor
    is recorded in the trace header and shown by [vulfi report]. *)
type executor = Legacy | Checkpointed | Fast_forward | Converge_pruned

(** CLI/report-facing name of an executor ("legacy", "checkpointed",
    "fast-forward", "converge-pruned"). *)
val executor_name : executor -> string

(** [effective_executor ~detectors e] is the executor the drivers will
    actually use: [e], except that [Fast_forward] and [Converge_pruned]
    degrade to [Checkpointed] when [detectors] is true (with a
    once-per-process stderr notice). Exposed so front-ends can record
    the effective executor in trace headers. *)
val effective_executor : detectors:bool -> executor -> executor

(** [run cfg w target category] executes the campaign protocol for one
    (workload, ISA, site-category) cell, sequentially. [transform]
    pre-processes the module (e.g. detector insertion); [hooks] builds
    per-run extra runtime; [respect_masks]/[fault_kind] select ablation
    variants. All randomness follows the pure {!Seed} schedule: each
    experiment's input, fault site and flipped bit are functions of
    (cfg.seed, workload, target, category, campaign, experiment).

    [sink] receives one telemetry record per experiment — in
    (campaign, experiment) order — plus the cell's summary record; with
    a default (no-timings) sink the trace is byte-identical between
    [run] and [run_parallel].

    [executor] (default [Checkpointed]) selects the {!executor}; all
    three are bit-identical — results, digests and traces — because
    golden runs are deterministic per (cell, input) and checkpoint
    placement is a pure function of the seed schedule. *)
val run :
  ?transform:(Vir.Vmodule.t -> Vir.Vmodule.t) ->
  ?hooks:hooks_factory ->
  ?respect_masks:bool ->
  ?fault_kind:Runtime.fault_kind ->
  ?sink:Trace.sink ->
  ?executor:executor ->
  config ->
  Workload.t ->
  Vir.Target.t ->
  Analysis.Sites.category ->
  result

(** [run_parallel ~jobs cfg w target category] is [run] with each
    campaign's experiments fanned out across a domain pool; the seed
    schedule makes the result bit-identical to [run]'s. An existing
    [pool] can be supplied to amortise domain spawning across cells
    (in which case [jobs] is only used if [pool] is absent). [sink]
    records are emitted in experiment order from the protocol loop
    (workers only buffer), so the trace too is bit-identical to a
    sequential run's unless the sink asked for wall times. With the
    [Checkpointed] and [Fast_forward] executors each worker keeps its
    own prepared-input (and checkpoint) cache — machines cannot cross
    domains — while the shared golden table stays
    schedule-deterministic; checkpoint plans are pure functions of the
    schedule, so every worker lays identical checkpoints. *)
val run_parallel :
  ?transform:(Vir.Vmodule.t -> Vir.Vmodule.t) ->
  ?hooks:hooks_factory ->
  ?respect_masks:bool ->
  ?fault_kind:Runtime.fault_kind ->
  ?pool:Pool.t ->
  ?sink:Trace.sink ->
  ?executor:executor ->
  jobs:int ->
  config ->
  Workload.t ->
  Vir.Target.t ->
  Analysis.Sites.category ->
  result

(** [run_cells ~jobs cfg cells] runs a list of
    (workload, target, category) cells over one shared domain pool —
    the shape of a Fig 11 / Table II sweep — returning results in cell
    order, each bit-identical to a sequential [run] of that cell. *)
val run_cells :
  ?transform:(Vir.Vmodule.t -> Vir.Vmodule.t) ->
  ?hooks:hooks_factory ->
  ?respect_masks:bool ->
  ?fault_kind:Runtime.fault_kind ->
  ?sink:Trace.sink ->
  ?executor:executor ->
  jobs:int ->
  config ->
  (Workload.t * Vir.Target.t * Analysis.Sites.category) list ->
  result list

(** The VULFI runtime injection API.

    Instrumented programs call [__vulfi_inject_T(value, mask, site_id)]
    once per scalar fault site per dynamic execution. The runtime:

    - in [Profile] mode counts dynamic fault sites (a site is live only
      when its execution-mask lane is on — the paper's central point
      about masked vector instructions) and passes values through;
    - in [Inject] mode flips one uniformly chosen bit of the value at
      the configured dynamic site index. *)

(* How the chosen register is corrupted. The paper's study uses
   [Single_bit_flip]; the other kinds reproduce the wider fault-model
   menu of the released VULFI tool. *)
type fault_kind =
  | Single_bit_flip
  | Multi_bit_flip of int  (** flip k distinct uniformly chosen bits *)
  | Random_value           (** replace all bits with a random pattern *)
  | Stuck_at_zero          (** clear the register *)

let fault_kind_name = function
  | Single_bit_flip -> "single-bit-flip"
  | Multi_bit_flip k -> Printf.sprintf "%d-bit-flip" k
  | Random_value -> "random-value"
  | Stuck_at_zero -> "stuck-at-zero"

type mode =
  | Profile
  | Inject of { dynamic_site : int }  (** 1-based index of the hit *)

type injection_record = {
  inj_static_site : int;
  inj_dynamic_site : int;
  inj_bit : int;
  inj_before : Interp.Vvalue.t;
  inj_after : Interp.Vvalue.t;
}

type t = {
  mutable mode : mode;
  mutable counter : int;         (** dynamic sites seen so far *)
  mutable injection : injection_record option;
  rng : Random.State.t;
  (* VULFI's defining behaviour is to skip masked-off lanes; setting
     [respect_masks = false] reproduces a mask-oblivious injector for
     the ablation study (it counts and corrupts dead lanes, inflating
     benign outcomes). *)
  respect_masks : bool;
  fault_kind : fault_kind;
}

(* [counter0] seeds the dynamic-site counter: a run resumed from a
   checkpoint has already observed the first [counter0] live sites in
   its skipped prefix, so the runtime picks up counting where the
   prefix left off. The RNG needs no equivalent — it is only drawn at
   the injection itself, which always happens in the executed suffix. *)
let create ?(seed = 0) ?(respect_masks = true)
    ?(fault_kind = Single_bit_flip) ?(counter0 = 0) mode =
  {
    mode;
    counter = counter0;
    injection = None;
    rng = Random.State.make [| seed |];
    respect_masks;
    fault_kind;
  }

(* Corrupt a scalar runtime value per the configured fault kind;
   returns (corrupted value, representative bit index for the record:
   the first flipped bit, or -1 for whole-register kinds). [value] is a
   borrowed register-buffer alias (destination-passing interpreter), so
   the mutation is applied to a private copy; the RNG draw order is
   identical to the old copy-per-flip implementation. *)
let corrupt t (value : Interp.Vvalue.t) : Interp.Vvalue.t * int =
  let width = Vir.Vtype.scalar_bits (Interp.Vvalue.scalar_kind value) in
  match t.fault_kind with
  | Single_bit_flip ->
    let bit = Random.State.int t.rng width in
    let v = Interp.Vvalue.copy value in
    Interp.Vvalue.flip_bit_inplace v ~lane:0 ~bit;
    (v, bit)
  | Multi_bit_flip k ->
    let k = min k width in
    (* choose k distinct bit positions, kept in draw order so the
       recorded bit really is the first one flipped *)
    let rec draw chosen remaining =
      if remaining = 0 then List.rev chosen
      else
        let bit = Random.State.int t.rng width in
        if List.mem bit chosen then draw chosen remaining
        else draw (bit :: chosen) (remaining - 1)
    in
    let chosen = draw [] k in
    let v = Interp.Vvalue.copy value in
    List.iter (fun bit -> Interp.Vvalue.flip_bit_inplace v ~lane:0 ~bit) chosen;
    (v, List.hd chosen)
  | Random_value ->
    (* [width] independent uniform bits: every pattern of the scalar's
       width is equally likely. (The old draw took a 63-bit int64 plus
       a complement coin — bit 63 was reachable only with the low bits
       complemented — and never truncated to the scalar's width.) *)
    let mask =
      if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
    in
    let bits = Int64.logand (Random.State.bits64 t.rng) mask in
    let v = Interp.Vvalue.copy value in
    Interp.Vvalue.set_lane_bits_inplace v ~lane:0 ~bits;
    (* guarantee an actual change *)
    if Interp.Vvalue.equal v value then begin
      let bit = Random.State.int t.rng width in
      Interp.Vvalue.copy_into ~dst:v value;
      Interp.Vvalue.flip_bit_inplace v ~lane:0 ~bit;
      (v, bit)
    end
    else (v, -1)
  | Stuck_at_zero ->
    let v = Interp.Vvalue.copy value in
    Interp.Vvalue.set_lane_bits_inplace v ~lane:0 ~bits:0L;
    (v, -1)

let dynamic_sites t = t.counter

let injected t = t.injection

(* The handler shared by all __vulfi_inject_* externs. *)
let handle t (_st : Interp.Machine.state) (args : Interp.Vvalue.t list) :
    Interp.Vvalue.t option =
  match args with
  | [ value; mask; site ] ->
    if t.respect_masks && not (Interp.Vvalue.as_bool mask) then
      (* Masked-off lane: not a live fault site. *)
      Some value
    else begin
      t.counter <- t.counter + 1;
      match t.mode with
      | Profile -> Some value
      | Inject { dynamic_site } ->
        if t.counter = dynamic_site then begin
          let corrupted, bit = corrupt t value in
          (* [value] aliases a register buffer the interpreter will keep
             rewriting; the record must capture a snapshot, not the
             alias. [corrupted] is already a private copy. *)
          t.injection <-
            Some
              {
                inj_static_site = Int64.to_int (Interp.Vvalue.as_int site);
                inj_dynamic_site = dynamic_site;
                inj_bit = bit;
                inj_before = Interp.Vvalue.copy value;
                inj_after = corrupted;
              };
          Some corrupted
        end
        else Some value
    end
  | _ -> invalid_arg "__vulfi_inject: bad arity"

(* Register the injection API on a machine. *)
let attach t (st : Interp.Machine.state) =
  List.iter
    (fun (name, _) -> Interp.Machine.register_extern st name (handle t))
    Fault_model.all_inject_fns

(** Deterministic, splittable seed schedule for campaigns.

    Every random decision of a campaign is derived by hashing its full
    coordinate — (base seed, workload, target, site category, campaign
    index, experiment index) — through a SplitMix64-style finalizer, so

    - distinct (target, category) cells of the same workload draw
      independent streams (previously every cell of a workload shared
      one RNG stream, correlating the paper's per-cell samples), and
    - an experiment's randomness is independent of execution order,
      which is what lets {!Campaign.run_parallel} produce bit-identical
      results to the sequential driver. *)

(** The derived key of one (seed, workload, target, category) cell. *)
type cell

(** The randomness of one experiment, split into independent streams. *)
type exp = {
  input_key : int64;  (** uniform key selecting the workload input *)
  site_key : int64;   (** uniform key selecting the dynamic fault site *)
  bit_seed : int;     (** seed for the in-experiment corruption RNG *)
}

val cell :
  seed:int ->
  workload:string ->
  target:Vir.Target.t ->
  category:Analysis.Sites.category ->
  cell

val to_int64 : cell -> int64

(** The raw per-experiment key; injective across (campaign, experiment)
    pairs within a cell (pinned by tests over the paper-scale grid). *)
val experiment_key : cell -> campaign:int -> experiment:int -> int64

val experiment : cell -> campaign:int -> experiment:int -> exp

(** [uniform key n] maps a 64-bit key uniformly onto [0, n).
    @raise Invalid_argument if [n <= 0]. *)
val uniform : int64 -> int -> int

(** Fault-injection campaigns (paper §IV-D).

    A campaign is [experiments_per_campaign] independent experiments
    (100 in the paper); its SDC rate is one statistical sample.
    Campaigns repeat until the sample distribution is near normal and
    the 95% margin of error drops below the target (±3%), bounded by
    [min_campaigns]/[max_campaigns].

    All randomness follows the pure {!Seed} schedule: an experiment's
    input, fault site and bit choice are functions of
    (seed, workload, target, category, campaign, experiment) alone, so

    - distinct cells of the same workload draw independent streams
      (the paper's per-cell samples are statistically independent), and
    - [run_parallel] produces results bit-identical to [run]. *)

type config = {
  experiments_per_campaign : int;
  min_campaigns : int;
  max_campaigns : int;
  margin_target : float;  (** e.g. 0.03 *)
  seed : int;
}

(* The paper's configuration: 100-experiment campaigns, at least 20 of
   them, ±3% margin at 95% confidence. *)
let paper_config =
  {
    experiments_per_campaign = 100;
    min_campaigns = 20;
    max_campaigns = 40;
    margin_target = 0.03;
    seed = 0xC0FFEE;
  }

(* A scaled-down configuration for quick runs of the harness. *)
let quick_config =
  {
    experiments_per_campaign = 25;
    min_campaigns = 4;
    max_campaigns = 8;
    margin_target = 0.10;
    seed = 0xC0FFEE;
  }

type totals = {
  n_experiments : int;
  n_sdc : int;
  n_benign : int;
  n_crash : int;
  n_detected : int;      (** runs flagged by a detector *)
  n_detected_sdc : int;  (** SDC runs flagged by a detector *)
}

let empty_totals =
  {
    n_experiments = 0;
    n_sdc = 0;
    n_benign = 0;
    n_crash = 0;
    n_detected = 0;
    n_detected_sdc = 0;
  }

let add_outcome t (r : Experiment.run_result) =
  {
    n_experiments = t.n_experiments + 1;
    n_sdc = (t.n_sdc + match r.Experiment.r_outcome with Outcome.Sdc -> 1 | _ -> 0);
    n_benign =
      (t.n_benign + match r.Experiment.r_outcome with Outcome.Benign -> 1 | _ -> 0);
    n_crash =
      (t.n_crash + match r.Experiment.r_outcome with Outcome.Crash _ -> 1 | _ -> 0);
    n_detected = (t.n_detected + if r.Experiment.r_detected then 1 else 0);
    n_detected_sdc =
      (t.n_detected_sdc
      +
      if r.Experiment.r_detected && r.Experiment.r_outcome = Outcome.Sdc then 1
      else 0);
  }

type result = {
  c_workload : string;
  c_target : Vir.Target.t;
  c_category : Analysis.Sites.category;
  c_campaigns : int;
  c_sdc_rates : float list;  (** one sample per campaign *)
  c_totals : totals;
  c_margin : float;
  c_near_normal : bool;
  c_static_sites : int;
  c_avg_dynamic_sites : float;
  c_avg_dynamic_instrs : float;
  c_golden_runs : int;
      (** distinct inputs the schedule drew — the golden runs any
          executor must perform at least once *)
  c_golden_reused : int;
      (** experiments that reused a cached golden run. Both counters
          are functions of the seed schedule alone (never of physical
          cache behaviour), so they are identical between the legacy
          and checkpointed executors, sequential or [-j N]. *)
  c_checkpoints : int;
      (** machine-state checkpoints the fast-forward executor lays for
          this cell (summed plan length over its distinct inputs) *)
  c_ff_resumed : int;
      (** experiments whose injection site is at or past the first
          checkpoint of its input's plan — the runs the fast-forward
          executor resumes rather than replays. Like the golden
          counters, both are pure functions of the seed schedule, so
          every executor reports the same values and traces stay
          byte-identical across executors. *)
  c_pruned : int;
      (** experiments with at least one plan checkpoint site strictly
          after their injection site — the runs the converge-pruned
          executor can terminate early (whether a given run physically
          prunes depends on when its fault converges; that physical
          count is bench-only telemetry, {!Experiment.prune_stats}) *)
  c_prune_checks : int;
      (** total (experiment, plan site) pairs with the site strictly
          after the injection site — the convergence comparisons the
          converge-pruned executor can at most perform. Both are pure
          functions of the seed schedule, reported identically by all
          four executors. *)
}

let rate part total =
  if total = 0 then 0.0 else float_of_int part /. float_of_int total

let sdc_rate r = rate r.c_totals.n_sdc r.c_totals.n_experiments
let benign_rate r = rate r.c_totals.n_benign r.c_totals.n_experiments
let crash_rate r = rate r.c_totals.n_crash r.c_totals.n_experiments

(* Fraction of SDC-producing experiments that a detector flagged —
   the paper's "SDC detection rate" (Fig 12). *)
let sdc_detection_rate r = rate r.c_totals.n_detected_sdc r.c_totals.n_sdc

(* Detector hooks are stateful, so the campaign machinery takes a
   factory and builds a fresh record per run — experiments never share
   detector state, sequentially or across domains. *)
type hooks_factory = unit -> Experiment.hooks

let no_hooks_factory : hooks_factory = fun () -> Experiment.no_hooks

let cell_of cfg (w : Workload.t) target category =
  Seed.cell ~seed:cfg.seed ~workload:w.Workload.w_name ~target ~category

let input_of (w : Workload.t) (ex : Seed.exp) =
  Seed.uniform ex.Seed.input_key w.Workload.w_inputs

let vacuous_benign =
  {
    Experiment.r_outcome = Outcome.Benign;
    r_injection = None;
    r_detected = false;
    r_dyn_instrs = 0;
  }

(* Every injection site the full schedule (all [max_campaigns]) draws
   for [input], in schedule order. A pure function of the seed
   schedule and the input's (deterministic) dynamic-site count: the
   sequential and parallel drivers — and the trace replayer — derive
   the identical list, which is what makes checkpoint placement
   deterministic. *)
let schedule_sites cfg cell (w : Workload.t) ~input ~dyn_sites : int list =
  if dyn_sites <= 0 then []
  else begin
    let sites = ref [] in
    for c = 0 to cfg.max_campaigns - 1 do
      for e = 0 to cfg.experiments_per_campaign - 1 do
        let ex = Seed.experiment cell ~campaign:c ~experiment:e in
        if input_of w ex = input then
          sites := (1 + Seed.uniform ex.Seed.site_key dyn_sites) :: !sites
      done
    done;
    List.rev !sites
  end

(* The fast-forward checkpoint plan for one input: distinct scheduled
   sites, ascending, thinned to the executor's cap. *)
let plan_for cfg cell w ~input ~dyn_sites : int array =
  Experiment.checkpoint_plan (schedule_sites cfg cell w ~input ~dyn_sites)

(* The three executors a campaign can run on. All produce bit-identical
   results, digests and traces; they differ only in how much redundant
   prefix work they re-execute per experiment.

   [Legacy] is §IV-B taken literally: every experiment is two full
   executions — a fault-free profiling run, then the faulty run — each
   on a freshly built machine with [w_setup] re-applied.

   [Checkpointed] memoizes the golden run per (cell, input) and
   replaces the rebuild with a post-setup memory-snapshot restore; the
   faulty run still replays the whole prefix up to its injection site.

   [Fast_forward] additionally lays full machine-state checkpoints at
   the cell's scheduled injection sites during one instrumented golden
   replay, executes each campaign's experiments in injection order and
   resumes every faulty run from the nearest checkpoint at or before
   its site — only the post-injection suffix executes. Detector hooks
   keep their state outside the machine, so cells with detectors fall
   back to [Checkpointed] (a resumed run would skip the prefix's
   detector activity).

   [Converge_pruned] rides the fast-forward machinery (same plans,
   same resume points, same execution order) and additionally runs
   each faulty suffix under position tracking: at every later
   checkpoint site it compares the machine against the golden state
   captured there ({!Interp.Machine.state_equal} — counters, call
   stack, live registers, dirty-span-restricted memory) and, on a
   match, terminates immediately and splices the golden outcome. The
   splice is provably identical to running the suffix out (DESIGN.md,
   convergence soundness), so results and traces stay byte-identical.
   It degrades to [Checkpointed] under detectors exactly as
   [Fast_forward] does. *)
type executor = Legacy | Checkpointed | Fast_forward | Converge_pruned

(* How an experiment executes its runs (the per-experiment view of
   [executor]; the [option] carries the vacuous case — a cell with no
   live fault site never runs a faulty half). *)
type exec =
  | Paper_protocol
  | Checkpointed_exec of Experiment.prepared_input option
  | Fast_forward_exec of Experiment.ff_input option
  | Converge_pruned_exec of Experiment.ff_input option

(* One experiment, given its schedule entry and the accounting golden
   (the cached one; on the paper path the profiling run re-derives the
   same values — that recomputation is exactly what it measures). *)
let run_experiment ~(hooks : hooks_factory) ~respect_masks ?fault_kind
    ~(exec : exec) (prepared : Experiment.prepared)
    ~(golden : Experiment.golden) (ex : Seed.exp) : Experiment.run_result =
  match exec with
  | Checkpointed_exec pi ->
    if golden.Experiment.g_dyn_sites = 0 then
      (* no live fault site: vacuously benign *)
      vacuous_benign
    else
      let pi =
        match pi with Some pi -> pi | None -> assert false
        (* drivers always prepare an input that has live sites *)
      in
      let dynamic_site =
        1 + Seed.uniform ex.Seed.site_key golden.Experiment.g_dyn_sites
      in
      Experiment.faulty_run_checkpointed ~hooks:(hooks ()) ~respect_masks
        ?fault_kind prepared ~pi ~dynamic_site ~seed:ex.Seed.bit_seed
  | Fast_forward_exec ff ->
    if golden.Experiment.g_dyn_sites = 0 then vacuous_benign
    else
      let ff =
        match ff with Some ff -> ff | None -> assert false
      in
      let dynamic_site =
        1 + Seed.uniform ex.Seed.site_key golden.Experiment.g_dyn_sites
      in
      Experiment.faulty_run_ff ~hooks:(hooks ()) ~respect_masks
        ?fault_kind prepared ~ff ~dynamic_site ~seed:ex.Seed.bit_seed
  | Converge_pruned_exec ff ->
    if golden.Experiment.g_dyn_sites = 0 then vacuous_benign
    else
      let ff =
        match ff with Some ff -> ff | None -> assert false
      in
      let dynamic_site =
        1 + Seed.uniform ex.Seed.site_key golden.Experiment.g_dyn_sites
      in
      Experiment.faulty_run_pruned ~hooks:(hooks ()) ~respect_masks
        ?fault_kind prepared ~ff ~dynamic_site ~seed:ex.Seed.bit_seed
  | Paper_protocol ->
    let golden =
      Experiment.golden_run ~hooks:(hooks ()) ~respect_masks prepared
        ~input:golden.Experiment.g_input
    in
    if golden.Experiment.g_dyn_sites = 0 then vacuous_benign
    else
      let dynamic_site =
        1 + Seed.uniform ex.Seed.site_key golden.Experiment.g_dyn_sites
      in
      Experiment.faulty_run ~hooks:(hooks ()) ~respect_masks ?fault_kind
        prepared ~golden ~dynamic_site ~seed:ex.Seed.bit_seed

(* Run one experiment, timing it only when the sink asked for wall
   times; the clock syscall is skipped entirely on the deterministic
   (default) path. *)
let timed_experiment ~hooks ~respect_masks ?fault_kind ~exec ~timings
    prepared ~golden ex : Experiment.run_result * float =
  if timings then begin
    let t0 = Unix.gettimeofday () in
    let r =
      run_experiment ~hooks ~respect_masks ?fault_kind ~exec prepared
        ~golden ex
    in
    (r, Unix.gettimeofday () -. t0)
  end
  else
    ( run_experiment ~hooks ~respect_masks ?fault_kind ~exec prepared
        ~golden ex,
      0.0 )

(* Emit campaign [campaign]'s experiment records in experiment order.
   Both drivers call this from the (sequential) protocol loop after the
   whole batch is resolved — in the parallel driver the workers only
   buffer results — so the trace is ordered, and byte-identical between
   [run] and [run_parallel], at any -j. *)
let emit_experiments sink (w : Workload.t) target category ~campaign ~inputs
    ~site_counts ~(results : (Experiment.run_result * float) array) =
  match sink with
  | None -> ()
  | Some s ->
    let timings = Trace.timings s in
    Array.iteri
      (fun e (r, wall) ->
        Trace.emit s
          (Trace.experiment_record ~workload:w.Workload.w_name ~target
             ~category ~campaign ~experiment:e ~input:inputs.(e)
             ~golden_sites:site_counts.(e) ~result:r
             ?wall_s:(if timings then Some wall else None) ()))
      results

(* The stopping protocol, shared by the sequential and parallel
   drivers. [run_campaign c] returns campaign [c]'s run results in
   experiment order; both drivers honour that order, so every decision
   below — and hence the whole schedule — is identical between them. *)
let protocol cfg ~run_campaign =
  let totals = ref empty_totals in
  let sdc_rates = ref [] in
  let campaigns = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let results = run_campaign !campaigns in
    let campaign_totals = Array.fold_left add_outcome empty_totals results in
    Array.iter (fun r -> totals := add_outcome !totals r) results;
    incr campaigns;
    sdc_rates :=
      rate campaign_totals.n_sdc campaign_totals.n_experiments :: !sdc_rates;
    let margin = Stats.margin_of_error !sdc_rates in
    let normal = Stats.near_normal !sdc_rates in
    if
      !campaigns >= cfg.max_campaigns
      || (!campaigns >= cfg.min_campaigns
         && margin <= cfg.margin_target
         && normal)
    then continue_ := false
  done;
  (!campaigns, !sdc_rates, !totals)

let finalize cfg cell (prepared : Experiment.prepared) (w : Workload.t)
    target category (campaigns, sdc_rates, totals) golden_cache : result =
  (* Sort goldens by input so the float accumulation order does not
     depend on hash-table layout (and hence on execution order). *)
  let goldens =
    List.sort
      (fun a b -> compare a.Experiment.g_input b.Experiment.g_input)
      (Hashtbl.fold (fun _ g acc -> g :: acc) golden_cache [])
  in
  let avg f =
    match goldens with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun a g -> a +. float_of_int (f g)) 0.0 goldens
      /. float_of_int (List.length goldens)
  in
  let golden_runs = List.length goldens in
  (* Fast-forward accounting, recomputed from the schedule (never from
     what any executor physically did) so all three executors report
     identical counters: the checkpoints laid per distinct input, and
     the experiments whose site reaches the first checkpoint of its
     input's plan — exactly the runs [faulty_run_ff] resumes. *)
  let plans = Hashtbl.create 8 in
  List.iter
    (fun (g : Experiment.golden) ->
      if g.Experiment.g_dyn_sites > 0 then
        Hashtbl.replace plans g.Experiment.g_input
          (plan_for cfg cell w ~input:g.Experiment.g_input
             ~dyn_sites:g.Experiment.g_dyn_sites))
    goldens;
  let checkpoints =
    Hashtbl.fold (fun _ p acc -> acc + Array.length p) plans 0
  in
  let ff_resumed = ref 0 in
  let pruned = ref 0 in
  let prune_checks = ref 0 in
  for c = 0 to campaigns - 1 do
    for e = 0 to cfg.experiments_per_campaign - 1 do
      let ex = Seed.experiment cell ~campaign:c ~experiment:e in
      let input = input_of w ex in
      match Hashtbl.find_opt plans input with
      | Some plan when Array.length plan > 0 ->
        let g : Experiment.golden = Hashtbl.find golden_cache input in
        let site =
          1 + Seed.uniform ex.Seed.site_key g.Experiment.g_dyn_sites
        in
        if site >= plan.(0) then incr ff_resumed;
        (* Convergence-pruning opportunity: plan sites strictly after
           the injection site. Schedule-derived upper bounds, like the
           counters above — never what the executor physically did. *)
        let after =
          Array.fold_left
            (fun n s -> if s > site then n + 1 else n)
            0 plan
        in
        if after > 0 then incr pruned;
        prune_checks := !prune_checks + after
      | _ -> ()
    done
  done;
  {
    c_workload = w.Workload.w_name;
    c_target = target;
    c_category = category;
    c_campaigns = campaigns;
    c_sdc_rates = List.rev sdc_rates;
    c_totals = totals;
    c_margin = Stats.margin_of_error sdc_rates;
    c_near_normal = Stats.near_normal sdc_rates;
    c_static_sites = Instrument.static_site_count prepared.Experiment.p_instr;
    c_avg_dynamic_sites = avg (fun g -> g.Experiment.g_dyn_sites);
    c_avg_dynamic_instrs = avg (fun g -> g.Experiment.g_dyn_instrs);
    c_golden_runs = golden_runs;
    c_golden_reused = totals.n_experiments - golden_runs;
    c_checkpoints = checkpoints;
    c_ff_resumed = !ff_resumed;
    c_pruned = !pruned;
    c_prune_checks = !prune_checks;
  }

(* JSON view of a result — the per-cell summary record of a trace, and
   the cell entry of the RESULTS_*.json exports. [detectors] records
   whether detector hooks were attached during the campaign. *)
let result_json ?(detectors = false) (r : result) : Json.t =
  Trace.summary_record ~workload:r.c_workload ~target:r.c_target
    ~category:r.c_category ~detectors ~campaigns:r.c_campaigns
    ~sdc_rates:r.c_sdc_rates ~n_experiments:r.c_totals.n_experiments
    ~n_sdc:r.c_totals.n_sdc ~n_benign:r.c_totals.n_benign
    ~n_crash:r.c_totals.n_crash ~n_detected:r.c_totals.n_detected
    ~n_detected_sdc:r.c_totals.n_detected_sdc ~margin:r.c_margin
    ~near_normal:r.c_near_normal ~static_sites:r.c_static_sites
    ~avg_dyn_sites:r.c_avg_dynamic_sites
    ~avg_dyn_instrs:r.c_avg_dynamic_instrs ~golden_runs:r.c_golden_runs
    ~golden_reused:r.c_golden_reused ~checkpoints:r.c_checkpoints
    ~ff_resumed:r.c_ff_resumed ~pruned:r.c_pruned
    ~prune_checks:r.c_prune_checks

let executor_name = function
  | Legacy -> "legacy"
  | Checkpointed -> "checkpointed"
  | Fast_forward -> "fast-forward"
  | Converge_pruned -> "converge-pruned"

(* Resolve the effective executor: detector hooks keep their state
   outside the machine (violation counters in the host), so a resumed
   run would miss the skipped prefix's detector activity — detector
   cells degrade from [Fast_forward] (or [Converge_pruned], which rides
   the same resume machinery) to [Checkpointed], with a once-per-process
   stderr notice so the degradation is never silent. The effective
   executor is also recorded in the trace header (see {!Trace.make})
   and surfaced by [vulfi report]. *)
let degradation_noticed = ref false

let effective_executor ~detectors (executor : executor) : executor =
  match executor with
  | (Fast_forward | Converge_pruned) when detectors ->
    if not !degradation_noticed then begin
      degradation_noticed := true;
      Printf.eprintf
        "vulfi: note: %s executor degrades to checkpointed when \
         detectors are attached (detector state lives outside the \
         machine and cannot be resumed)\n%!"
        (executor_name executor)
    end;
    Checkpointed
  | e -> e

(* The order a campaign's experiments execute in: schedule order for
   the replaying executors; (input, injection site) order for the
   fast-forward executor, so consecutive runs of one input resume from
   monotonically advancing checkpoints (each restore is then a cheap
   dirty-span rollback of the most recent image instead of a full
   copy). Results are un-permuted afterwards — experiments are
   independent, so execution order never changes what they compute. *)
let execution_order (executor : executor) (exps : Seed.exp array)
    (inputs : int array) ~(dyn_sites_of : int -> int) : int array =
  let n = Array.length exps in
  let order = Array.init n Fun.id in
  (match executor with
  | Fast_forward | Converge_pruned ->
    let keys =
      Array.init n (fun e ->
          let dyn = dyn_sites_of inputs.(e) in
          let site =
            if dyn = 0 then 0
            else 1 + Seed.uniform exps.(e).Seed.site_key dyn
          in
          (inputs.(e), site, e))
    in
    Array.sort (fun a b -> compare keys.(a) keys.(b)) order
  | Legacy | Checkpointed -> ());
  order

(* Does [executor] run faulty halves off the fast-forward input (laid
   checkpoints + golden dirty spans)? *)
let uses_ff = function
  | Fast_forward | Converge_pruned -> true
  | Legacy | Checkpointed -> false

(* Run the full campaign protocol for one
   (workload, target, site-category) cell, sequentially.
   [transform] pre-processes the module (e.g. detector insertion);
   [hooks] builds per-run extra runtime (e.g. the detector API). *)
let run ?transform ?hooks ?(respect_masks = true)
    ?fault_kind ?sink ?(executor = Checkpointed) (cfg : config)
    (w : Workload.t) (target : Vir.Target.t)
    (category : Analysis.Sites.category) : result =
  let detectors = Option.is_some hooks in
  let executor = effective_executor ~detectors executor in
  let hooks = Option.value hooks ~default:no_hooks_factory in
  let prepared = Experiment.prepare ?transform w target category in
  let cell = cell_of cfg w target category in
  (* Golden runs are deterministic per input: resolve each distinct
     input once for scheduling and accounting (site counts, averages).
     On the checkpointed path the entry also carries the whole prepared
     input (machine + post-setup snapshot), so faulty runs skip machine
     construction, [w_setup] and the golden run; the fast-forward path
     additionally lays the input's checkpoint plan with one tracked
     replay; on the paper-protocol path every experiment still performs
     its own profiling run. *)
  let golden_cache = Hashtbl.create 8 in
  let pi_cache : (int, Experiment.prepared_input) Hashtbl.t =
    Hashtbl.create 8
  in
  let ff_cache : (int, Experiment.ff_input) Hashtbl.t = Hashtbl.create 8 in
  let golden input =
    match Hashtbl.find_opt golden_cache input with
    | Some g -> g
    | None ->
      let g =
        match executor with
        | Checkpointed ->
          let pi =
            Experiment.prepare_input ~hooks:(hooks ()) ~respect_masks
              prepared ~input
          in
          Hashtbl.add pi_cache input pi;
          pi.Experiment.pi_golden
        | Fast_forward | Converge_pruned ->
          let pi =
            Experiment.prepare_input ~hooks:(hooks ()) ~respect_masks
              prepared ~input
          in
          let g = pi.Experiment.pi_golden in
          let plan =
            plan_for cfg cell w ~input
              ~dyn_sites:g.Experiment.g_dyn_sites
          in
          Hashtbl.add ff_cache input
            (Experiment.lay_checkpoints ~hooks:(hooks ()) ~respect_masks
               prepared ~pi ~plan);
          g
        | Legacy ->
          Experiment.golden_run ~hooks:(hooks ()) ~respect_masks prepared
            ~input
      in
      Hashtbl.add golden_cache input g;
      g
  in
  let timings =
    match sink with Some s -> Trace.timings s | None -> false
  in
  let run_campaign c =
    let exps =
      Array.init cfg.experiments_per_campaign (fun e ->
          Seed.experiment cell ~campaign:c ~experiment:e)
    in
    let inputs = Array.map (input_of w) exps in
    (* Resolve this round's goldens in schedule order (cache insertion
       order stays executor-independent), then execute. *)
    Array.iter (fun i -> ignore (golden i)) inputs;
    let dyn_sites_of i =
      (Hashtbl.find golden_cache i).Experiment.g_dyn_sites
    in
    let order = execution_order executor exps inputs ~dyn_sites_of in
    let results =
      Array.make cfg.experiments_per_campaign (vacuous_benign, 0.0)
    in
    Array.iter
      (fun e ->
        let golden = Hashtbl.find golden_cache inputs.(e) in
        let exec =
          match executor with
          | Checkpointed ->
            Checkpointed_exec (Hashtbl.find_opt pi_cache inputs.(e))
          | Fast_forward ->
            Fast_forward_exec (Hashtbl.find_opt ff_cache inputs.(e))
          | Converge_pruned ->
            Converge_pruned_exec (Hashtbl.find_opt ff_cache inputs.(e))
          | Legacy -> Paper_protocol
        in
        results.(e) <-
          timed_experiment ~hooks ~respect_masks ?fault_kind ~exec
            ~timings prepared ~golden exps.(e))
      order;
    let site_counts =
      Array.map
        (fun i -> (Hashtbl.find golden_cache i).Experiment.g_dyn_sites)
        inputs
    in
    emit_experiments sink w target category ~campaign:c ~inputs
      ~site_counts ~results;
    Array.map fst results
  in
  let r =
    finalize cfg cell prepared w target category
      (protocol cfg ~run_campaign) golden_cache
  in
  (match sink with
  | None -> ()
  | Some s -> Trace.emit s (result_json ~detectors r));
  r

(* Parallel driver: fans each campaign's experiments out across a
   domain pool. Because the seed schedule fixes every random choice up
   front, the only coordination needed is resolving each campaign's
   golden runs before the fan-out; results are gathered in experiment
   order, making the outcome bit-identical to [run]. *)
let run_parallel ?transform ?hooks
    ?(respect_masks = true) ?fault_kind ?pool ?sink
    ?(executor = Checkpointed) ~jobs (cfg : config)
    (w : Workload.t) (target : Vir.Target.t)
    (category : Analysis.Sites.category) : result =
  let detectors = Option.is_some hooks in
  let executor = effective_executor ~detectors executor in
  let hooks = Option.value hooks ~default:no_hooks_factory in
  let with_pool_ f =
    match pool with
    | Some p -> f p
    | None -> Pool.with_pool ~jobs f
  in
  with_pool_ (fun pool ->
      let prepared = Experiment.prepare ?transform w target category in
      let cell = cell_of cfg w target category in
      let golden_cache = Hashtbl.create 8 in
      (* Machines cannot be shared across domains, so the checkpointed
         and fast-forward paths keep one prepared-input (resp.
         ff-input) cache per pool worker (worker ids are stable and
         never run two items at once — no locking). A worker that
         first meets an input re-runs setup + golden — and on the
         fast-forward path the checkpoint-laying replay, whose plan is
         a pure function of the schedule, so every worker lays the
         same checkpoints — for its own cache; the numbers are
         deterministic, so this only costs time, never changes
         results. Per-cell lifetime: the caches (and their machines)
         die with this call. *)
      let uses_pi = match executor with Legacy -> false | _ -> true in
      let pi_caches : (int, Experiment.prepared_input) Hashtbl.t array =
        Array.init
          (if uses_pi then Pool.size pool else 0)
          (fun _ -> Hashtbl.create 8)
      in
      let ff_caches : (int, Experiment.ff_input) Hashtbl.t array =
        Array.init
          (if uses_ff executor then Pool.size pool else 0)
          (fun _ -> Hashtbl.create 8)
      in
      (* Build (and cache) worker [wid]'s prepared input, plus its laid
         checkpoints on the fast-forward path. *)
      let prepare_for wid input =
        let pi =
          Experiment.prepare_input ~hooks:(hooks ()) ~respect_masks
            prepared ~input
        in
        Hashtbl.replace pi_caches.(wid) input pi;
        if uses_ff executor then begin
          let plan =
            plan_for cfg cell w ~input
              ~dyn_sites:pi.Experiment.pi_golden.Experiment.g_dyn_sites
          in
          Hashtbl.replace ff_caches.(wid) input
            (Experiment.lay_checkpoints ~hooks:(hooks ()) ~respect_masks
               prepared ~pi ~plan)
        end;
        pi
      in
      let pi_for wid input (golden : Experiment.golden) =
        if golden.Experiment.g_dyn_sites = 0 then
          (* vacuously benign: no faulty run will happen *)
          None
        else
          match Hashtbl.find_opt pi_caches.(wid) input with
          | Some pi -> Some pi
          | None -> Some (prepare_for wid input)
      in
      let ff_for wid input (golden : Experiment.golden) =
        if golden.Experiment.g_dyn_sites = 0 then None
        else begin
          (match Hashtbl.find_opt ff_caches.(wid) input with
          | Some _ -> ()
          | None -> ignore (prepare_for wid input));
          Hashtbl.find_opt ff_caches.(wid) input
        end
      in
      let timings =
        match sink with Some s -> Trace.timings s | None -> false
      in
      let run_campaign c =
        let exps =
          Array.init cfg.experiments_per_campaign (fun e ->
              Seed.experiment cell ~campaign:c ~experiment:e)
        in
        let inputs = Array.map (input_of w) exps in
        (* Resolve this round's missing goldens (in parallel), keeping
           first-appearance order for cache insertion. *)
        let seen = Hashtbl.create 8 in
        let fresh = ref [] in
        Array.iter
          (fun input ->
            if
              (not (Hashtbl.mem golden_cache input))
              && not (Hashtbl.mem seen input)
            then begin
              Hashtbl.add seen input ();
              fresh := input :: !fresh
            end)
          inputs;
        let fresh = Array.of_list (List.rev !fresh) in
        let goldens =
          Pool.map_with_worker pool
            (fun wid input ->
              if uses_pi then
                (prepare_for wid input).Experiment.pi_golden
              else
                Experiment.golden_run ~hooks:(hooks ()) ~respect_masks
                  prepared ~input)
            fresh
        in
        Array.iteri (fun k g -> Hashtbl.add golden_cache fresh.(k) g) goldens;
        (* The cache is read-only during the fan-out below. Workers
           only buffer (result, wall) pairs; the fan-out runs in
           injection-sorted order on the fast-forward path and results
           are un-permuted right after, so the buffered array — and
           hence the sink, written from this (sequential) protocol
           loop — is in experiment order at any -j. *)
        let dyn_sites_of i =
          (Hashtbl.find golden_cache i).Experiment.g_dyn_sites
        in
        let order = execution_order executor exps inputs ~dyn_sites_of in
        let fanned =
          Pool.map_with_worker pool
            (fun wid e ->
              let input = inputs.(e) in
              let golden = Hashtbl.find golden_cache input in
              let exec =
                match executor with
                | Checkpointed ->
                  Checkpointed_exec (pi_for wid input golden)
                | Fast_forward -> Fast_forward_exec (ff_for wid input golden)
                | Converge_pruned ->
                  Converge_pruned_exec (ff_for wid input golden)
                | Legacy -> Paper_protocol
              in
              timed_experiment ~hooks ~respect_masks ?fault_kind ~exec
                ~timings prepared ~golden exps.(e))
            order
        in
        let results =
          Array.make cfg.experiments_per_campaign (vacuous_benign, 0.0)
        in
        Array.iteri (fun k e -> results.(e) <- fanned.(k)) order;
        let site_counts =
          Array.map
            (fun i -> (Hashtbl.find golden_cache i).Experiment.g_dyn_sites)
            inputs
        in
        emit_experiments sink w target category ~campaign:c ~inputs
          ~site_counts ~results;
        Array.map fst results
      in
      let r =
        finalize cfg cell prepared w target category
          (protocol cfg ~run_campaign) golden_cache
      in
      (match sink with
      | None -> ()
      | Some s -> Trace.emit s (result_json ~detectors r));
      r)

(* Cell-level driver: run many (workload, target, category) cells over
   one shared pool — the shape of a Fig 11/Table II sweep. *)
let run_cells ?transform ?hooks ?respect_masks ?fault_kind ?sink
    ?executor ~jobs (cfg : config)
    (cells : (Workload.t * Vir.Target.t * Analysis.Sites.category) list) :
    result list =
  Pool.with_pool ~jobs (fun pool ->
      List.map
        (fun (w, target, category) ->
          run_parallel ?transform ?hooks ?respect_masks ?fault_kind ~pool
            ?sink ?executor ~jobs cfg w target category)
        cells)

(** Deterministic, splittable seed schedule for campaigns.

    Every random decision of a campaign — which input an experiment
    draws, which dynamic fault site it hits and which bit it flips — is
    derived by hashing the full coordinate of the decision:

      (base seed, workload, target, site category,
       campaign index, experiment index)

    through a SplitMix64-style finalizer. Consequences:

    - two cells of the same workload (e.g. AVX/pure-data vs
      SSE/control) consume {e independent} streams — previously the RNG
      was seeded from (seed, workload) only, statistically correlating
      every column of Tables II/III that shares a workload;
    - an experiment's randomness does not depend on when or where it
      executes, so a campaign can be evaluated in any order — in
      particular fanned out across domains — and produce bit-identical
      results to the sequential schedule. *)

type cell = int64

type exp = {
  input_key : int64;  (** uniform key selecting the workload input *)
  site_key : int64;   (** uniform key selecting the dynamic fault site *)
  bit_seed : int;     (** seed for the in-experiment corruption RNG *)
}

(* SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom
   number generators"): a bijective avalanche mix of the state. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden_gamma = 0x9E3779B97F4A7C15L

(* Absorb one 64-bit word into the running key. *)
let absorb st x = mix64 (Int64.add (Int64.logxor st x) golden_gamma)

let absorb_int st i = absorb st (Int64.of_int i)

let absorb_string st s =
  String.fold_left
    (fun st c -> absorb_int st (Char.code c))
    (absorb_int st (String.length s))
    s

let cell ~seed ~workload ~(target : Vir.Target.t)
    ~(category : Analysis.Sites.category) : cell =
  let st = absorb_int 0L seed in
  let st = absorb_string st workload in
  let st = absorb_string st (Vir.Target.name target) in
  absorb_string st (Analysis.Sites.category_name category)

let to_int64 (c : cell) = c

(* The raw per-experiment key; injective across (campaign, experiment)
   pairs in practice (pinned by a test over the paper-scale grid). *)
let experiment_key (c : cell) ~campaign ~experiment =
  absorb_int (absorb_int c campaign) experiment

let experiment (c : cell) ~campaign ~experiment : exp =
  let k = experiment_key c ~campaign ~experiment in
  {
    input_key = absorb_int k 1;
    site_key = absorb_int k 2;
    bit_seed = Int64.to_int (absorb_int k 3) land max_int;
  }

(* Map a 64-bit key uniformly onto [0, n). The modulo bias over a
   2^64 keyspace is < n/2^64 — far below campaign noise. *)
let uniform key n =
  if n <= 0 then invalid_arg "Seed.uniform: n must be positive";
  Int64.to_int (Int64.unsigned_rem key (Int64.of_int n))

(** A fixed-size OCaml 5 domain worker pool.

    [create ~jobs] starts [jobs - 1] worker domains; the thread calling
    {!map} acts as the remaining worker, so a batch runs on exactly
    [jobs] domains. The pool persists across {!map} calls, keeping
    domain spawning off the per-batch path. *)

type t

val create : jobs:int -> t

(** Number of concurrent workers (including the submitting thread). *)
val size : t -> int

(** [map t f arr] applies [f] to every element, distributing items
    across the pool's domains via a shared cursor (items of uneven cost
    self-balance). Result order matches [arr] regardless of which
    domain ran an item. An exception raised by [f] is re-raised in the
    caller after the batch drains (first one wins). Not reentrant: do
    not call [map] from within [f]. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** Like {!map}, but [f] also receives the stable id of the worker
    executing the item: 0 for the submitting thread, 1..[size]-1 for
    the pool domains. Lets callers keep per-worker caches (e.g. of
    machines, which cannot be shared across domains) without any
    locking: a given id never runs two items concurrently. *)
val map_with_worker : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** Terminate and join the worker domains. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool, shutting it down on
    exit (normal or exceptional). *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

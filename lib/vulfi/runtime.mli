(** The VULFI runtime injection API.

    Instrumented programs call [__vulfi_inject_T(value, mask, site_id)]
    once per scalar fault site per dynamic execution; this module
    provides the handlers behind those externs. *)

(** How the chosen register is corrupted. The paper's study uses
    {!Single_bit_flip}; the other kinds reproduce the wider fault-model
    menu of the released VULFI tool. *)
type fault_kind =
  | Single_bit_flip
  | Multi_bit_flip of int  (** flip k distinct uniformly chosen bits *)
  | Random_value  (** replace all bits with a random pattern *)
  | Stuck_at_zero  (** clear the register *)

val fault_kind_name : fault_kind -> string

type mode =
  | Profile  (** count dynamic fault sites, pass values through *)
  | Inject of { dynamic_site : int }
      (** corrupt the value at the 1-based dynamic site index *)

(** What an injection did, for reporting. *)
type injection_record = {
  inj_static_site : int;  (** index into the instrumentor's site table *)
  inj_dynamic_site : int;
  inj_bit : int;  (** flipped bit (the first one flipped for multi-bit;
                      -1 for whole-register kinds) *)
  inj_before : Interp.Vvalue.t;
  inj_after : Interp.Vvalue.t;
}

type t

(** [create ?seed ?respect_masks ?fault_kind ?counter0 mode] builds a
    runtime. [respect_masks] (default [true]) is VULFI's defining
    behaviour of skipping masked-off vector lanes; [false] reproduces a
    mask-oblivious injector for ablation. [counter0] (default 0) seeds
    the dynamic-site counter with the number of live sites already
    observed — a run resumed from a checkpoint passes the skipped
    prefix's site count so injection indices keep their whole-run
    meaning. *)
val create :
  ?seed:int -> ?respect_masks:bool -> ?fault_kind:fault_kind ->
  ?counter0:int -> mode -> t

(** [corrupt t v] corrupts a scalar runtime value per the configured
    fault kind; returns the corrupted value and the representative bit
    for the record: the first flipped bit (in draw order), or -1 for
    whole-register kinds. *)
val corrupt : t -> Interp.Vvalue.t -> Interp.Vvalue.t * int

(** Dynamic fault sites observed so far (live lanes only, unless
    mask-oblivious). *)
val dynamic_sites : t -> int

(** The injection performed during the run, if any. *)
val injected : t -> injection_record option

(** The extern handler shared by all [__vulfi_inject_*] functions. *)
val handle :
  t -> Interp.Machine.state -> Interp.Vvalue.t list ->
  Interp.Vvalue.t option

(** Register the injection API on a machine. *)
val attach : t -> Interp.Machine.state -> unit

(** One fault-injection experiment = two executions of the instrumented
    program on the same input (paper §IV-B): a fault-free profiling run
    that records the output and the number of dynamic fault sites, and a
    faulty run that flips one bit at a uniformly chosen dynamic site. *)

(* Extra runtime surface (e.g. error detectors) to attach to machines. *)
type hooks = {
  h_attach : Interp.Machine.state -> unit;
  h_flagged : unit -> bool;  (** did a detector fire during the run? *)
  h_reset : unit -> unit;
}

let no_hooks =
  {
    h_attach = (fun _ -> ());
    h_flagged = (fun () -> false);
    h_reset = (fun () -> ());
  }

type prepared = {
  p_workload : Workload.t;
  p_target : Vir.Target.t;
  p_category : Analysis.Sites.category;
  p_code : Interp.Compile.cmodule;
  p_instr : Instrument.t;
}

(* Peephole fusion of the compiled hot path. The pass only annotates
   (dynamic counts, fault-site numbering and traces are unchanged —
   see Passes.Fuse), so it is on by default even inside campaigns;
   [VULFI_NO_FUSION=1] or clearing this ref disables it, which the CI
   cross-check uses to diff fused against unfused runs. *)
let fusion_enabled =
  ref
    (match Sys.getenv_opt "VULFI_NO_FUSION" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

(* The list scheduler (Analysis.Sched via Passes.Schedule): reorders
   pure instructions between fences so single-use chains become
   adjacent for fusion. Injection calls, loads/stores and anything
   trappable are fences nothing crosses, so dynamic counts, trap
   points, injected values and traces are unchanged (DESIGN.md,
   "Scheduler legality") — on by default even inside campaigns.
   [VULFI_NO_SCHEDULE=1] / [--no-schedule] disables it for the CI
   cross-check, mirroring [fusion_enabled]. *)
let schedule_enabled =
  ref
    (match Sys.getenv_opt "VULFI_NO_SCHEDULE" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

(* Convergence pruning inside the converge-pruned executor: terminate a
   faulty run at the first post-injection checkpoint site whose machine
   state matches the golden run's, splicing the golden outcome. Pure
   throughput — results and traces are identical either way — so it is
   on by default; [VULFI_NO_PRUNE=1] degrades [faulty_run_pruned] to
   the plain fast-forward path for cross-checks, mirroring
   [VULFI_NO_FUSION]/[VULFI_NO_SCHEDULE]. *)
let prune_enabled =
  ref
    (match Sys.getenv_opt "VULFI_NO_PRUNE" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

(* Build, select fault sites for [category], instrument, verify and
   compile a workload. [transform] optionally rewrites the module
   before instrumentation (used to insert error detectors). Scheduling
   and fusion run after instrumentation: injected Call redirections
   have already split every targeted def-use link, so a chain can
   never swallow a fault site, and the injection calls are scheduling
   fences that pin the instrumented neighbourhood in place. Site
   enumeration ([Sites.targets_of_module]) ran on the pre-pass module,
   so site numbering is untouched either way. *)
let prepare ?(transform = fun (m : Vir.Vmodule.t) -> m)
    (w : Workload.t) (target : Vir.Target.t)
    (category : Analysis.Sites.category) : prepared =
  let m = transform (w.Workload.w_build target) in
  let targets =
    Analysis.Sites.select (Analysis.Sites.targets_of_module m) category
  in
  let instr = Instrument.run m targets in
  if !schedule_enabled then
    ignore (Passes.Schedule.run_module instr.Instrument.instrumented);
  if !fusion_enabled then
    ignore (Passes.Fuse.run_module instr.Instrument.instrumented);
  {
    p_workload = w;
    p_target = target;
    p_category = category;
    p_code = Interp.Compile.compile_module instr.Instrument.instrumented;
    p_instr = instr;
  }

type golden = {
  g_input : int;
  g_output : Outcome.output;
  g_dyn_sites : int;   (** dynamic fault sites N *)
  g_dyn_instrs : int;  (** dynamic instructions, for budget + Table I *)
}

exception Golden_run_failed of string

(* Fault-free profiling run. [respect_masks:false] reproduces a
   mask-oblivious injector for the ablation study. *)
let golden_run ?(hooks = no_hooks) ?(respect_masks = true) (p : prepared)
    ~input : golden =
  let rt = Runtime.create ~respect_masks Runtime.Profile in
  let st = Interp.Machine.create p.p_code in
  Runtime.attach rt st;
  hooks.h_reset ();
  hooks.h_attach st;
  let args, read_output =
    p.p_workload.Workload.w_setup ~input st
  in
  (match Interp.Machine.run st p.p_workload.Workload.w_fn args with
  | _ -> ()
  | exception Interp.Trap.Trap k ->
    raise
      (Golden_run_failed
         (Printf.sprintf "%s input %d: %s" p.p_workload.Workload.w_name
            input (Interp.Trap.to_string k))));
  {
    g_input = input;
    g_output = read_output ();
    g_dyn_sites = Runtime.dynamic_sites rt;
    g_dyn_instrs = Interp.Machine.dyn_count st;
  }

(* ------------------------------------------------------------------ *)
(* Checkpointed execution. Per (cell, input) the legacy path repeats
   machine construction, [w_setup] and the golden run for every
   experiment even though inputs come from a small finite pool. A
   prepared input does that work once: build a machine, run [w_setup],
   snapshot the post-setup memory image, run the golden run once — then
   every faulty run restores the snapshot and re-arms the same machine.
   Bit-identity with the legacy path holds because the bump allocator is
   deterministic (restored addresses equal fresh ones), [w_setup]
   writes memory deterministically per input, and the per-run RNG is
   seeded from the experiment seed in both paths. *)

type prepared_input = {
  pi_golden : golden;
  pi_machine : Interp.Machine.state;
  pi_snapshot : Interp.Memory.snapshot;  (** post-setup memory image *)
  pi_args : Interp.Vvalue.t list;
      (** owned by this record and reused across every faulty run;
          sound because [Machine.run] copies argument lanes into the
          entry frame's pinned buffers rather than aliasing them *)
  pi_read_output : unit -> Outcome.output;
}

(* One-time stage: setup, snapshot, golden run. Mirrors [golden_run]
   exactly (same machine construction and attach order) so the golden
   numbers are identical; the snapshot is taken between setup and the
   profiling run so every later restore lands on the post-setup image. *)
let prepare_input ?(hooks = no_hooks) ?(respect_masks = true)
    (p : prepared) ~input : prepared_input =
  let rt = Runtime.create ~respect_masks Runtime.Profile in
  let st = Interp.Machine.create p.p_code in
  Runtime.attach rt st;
  hooks.h_reset ();
  hooks.h_attach st;
  let args, read_output = p.p_workload.Workload.w_setup ~input st in
  let snap = Interp.Memory.snapshot (Interp.Machine.memory st) in
  (match Interp.Machine.run st p.p_workload.Workload.w_fn args with
  | _ -> ()
  | exception Interp.Trap.Trap k ->
    raise
      (Golden_run_failed
         (Printf.sprintf "%s input %d: %s" p.p_workload.Workload.w_name
            input (Interp.Trap.to_string k))));
  {
    pi_golden =
      {
        g_input = input;
        g_output = read_output ();
        g_dyn_sites = Runtime.dynamic_sites rt;
        g_dyn_instrs = Interp.Machine.dyn_count st;
      };
    pi_machine = st;
    pi_snapshot = snap;
    pi_args = args;
    pi_read_output = read_output;
  }

type run_result = {
  r_outcome : Outcome.t;
  r_injection : Runtime.injection_record option;
  r_detected : bool;  (** a detector flagged the run *)
  r_dyn_instrs : int;  (** dynamic instructions of the faulty run *)
}

(* A fault-induced loop must terminate as an observable hang: a run
   exceeding ten times the fault-free execution (plus slack for tiny
   kernels) is classified as budget-exhausted. The single definition is
   shared by every executor (legacy, checkpointed, fast-forward) so a
   future tweak cannot silently diverge their classifications. *)
let fault_budget (golden : golden) = (golden.g_dyn_instrs * 10) + 10_000

(* Faulty run at 1-based [dynamic_site]; [seed] fixes the bit choice. *)
let faulty_run ?(hooks = no_hooks) ?(respect_masks = true) ?fault_kind
    (p : prepared) ~(golden : golden) ~dynamic_site ~seed : run_result =
  let rt =
    Runtime.create ~seed ~respect_masks ?fault_kind
      (Runtime.Inject { dynamic_site })
  in
  let budget = fault_budget golden in
  let st = Interp.Machine.create ~budget p.p_code in
  Runtime.attach rt st;
  hooks.h_reset ();
  hooks.h_attach st;
  let args, read_output =
    p.p_workload.Workload.w_setup ~input:golden.g_input st
  in
  let faulty =
    match Interp.Machine.run st p.p_workload.Workload.w_fn args with
    | _ -> Ok (read_output ())
    | exception Interp.Trap.Trap k -> Error k
  in
  {
    r_outcome =
      Outcome.classify
        ~tol:p.p_workload.Workload.w_out_tolerance
        ~golden:golden.g_output ~faulty ();
    r_injection = Runtime.injected rt;
    r_detected = hooks.h_flagged ();
    r_dyn_instrs = Interp.Machine.dyn_count st;
  }

(* Faulty run against a prepared input: restore the post-setup memory
   image and re-arm the cached machine instead of rebuilding both.
   Semantically identical to [faulty_run] — same budget rule, same
   attach order, same classification. *)
let faulty_run_checkpointed ?(hooks = no_hooks) ?(respect_masks = true)
    ?fault_kind (p : prepared) ~(pi : prepared_input) ~dynamic_site
    ~seed : run_result =
  let rt =
    Runtime.create ~seed ~respect_masks ?fault_kind
      (Runtime.Inject { dynamic_site })
  in
  let golden = pi.pi_golden in
  let budget = fault_budget golden in
  let st = pi.pi_machine in
  Interp.Memory.restore (Interp.Machine.memory st) pi.pi_snapshot;
  Interp.Machine.reset ~budget st;
  Runtime.attach rt st;
  hooks.h_reset ();
  hooks.h_attach st;
  let faulty =
    match Interp.Machine.run st p.p_workload.Workload.w_fn pi.pi_args with
    | _ -> Ok (pi.pi_read_output ())
    | exception Interp.Trap.Trap k -> Error k
  in
  {
    r_outcome =
      Outcome.classify
        ~tol:p.p_workload.Workload.w_out_tolerance
        ~golden:golden.g_output ~faulty ();
    r_injection = Runtime.injected rt;
    r_detected = hooks.h_flagged ();
    r_dyn_instrs = Interp.Machine.dyn_count st;
  }

(* ------------------------------------------------------------------ *)
(* Fast-forward execution. The checkpointed path above still replays
   the whole golden prefix of every faulty run up to the injected
   site; on long workloads whose injections cluster late, that prefix
   dominates campaign time. The fast-forward executor captures full
   machine-state checkpoints (memory image, register frames, call
   stack, counters) at a subset of the cell's scheduled injection
   sites during ONE instrumented golden replay, and each faulty run
   resumes from the nearest checkpoint at or before its site — only
   the post-injection suffix executes.

   Determinism is preserved because checkpoint *placement* is a pure
   function of the seed schedule: every experiment's dynamic site is
   computable upfront from (seed, workload, target, category,
   campaign, experiment) before anything runs, so sequential and
   parallel drivers derive the identical plan. *)

(* Cap on checkpoints per (cell, input): bounds the retained memory
   images while keeping one checkpoint per distinct scheduled site for
   every realistic cell (paper cells schedule at most
   [experiments_per_campaign * max_campaigns] distinct sites, and the
   distinct count is far smaller on short traces). A checkpoint costs
   one memory snapshot (dirty spans of small workload heaps) plus the
   deep-copied register frames of the stack at the probe, so even a
   few hundred are cheap; runs whose site falls exactly on a plan site
   resume with zero pre-injection re-execution. *)
let default_max_checkpoints = 192

(* The checkpoint sites for one (cell, input): the distinct scheduled
   injection sites, ascending, thinned to at most [max_checkpoints] by
   keeping the rightmost site of each of [max_checkpoints] equal
   slices (so every scheduled site still has a plan site at or not far
   below it; sites below the first plan entry fall back to a
   from-the-start replay). Pure function of the schedule. *)
let checkpoint_plan ?(max_checkpoints = default_max_checkpoints)
    (sites : int list) : int array =
  let a =
    Array.of_list
      (List.sort_uniq compare (List.filter (fun s -> s > 0) sites))
  in
  let n = Array.length a in
  if n <= max_checkpoints then a
  else
    Array.init max_checkpoints (fun i ->
        a.(((i + 1) * n / max_checkpoints) - 1))

(* A prepared input plus the machine-state checkpoints laid for it:
   [(site, checkpoint)] pairs sorted by site ascending. The
   checkpoints alias [ff_pi]'s machine — faulty runs must execute on
   that machine (they do: that is the prepared input's machine). *)
type ff_input = {
  ff_pi : prepared_input;
  ff_checkpoints : (int * Interp.Machine.checkpoint) array;
  ff_spans : Interp.Memory.spans array;
      (** aligned with [ff_checkpoints]: the golden run's accumulated
          dirty-span hulls from the post-setup image up to each
          checkpoint. A faulty run's convergence check at checkpoint
          [j] compares memory only over [ff_spans.(j)] united with its
          own live dirty spans — everything outside both is untouched
          since the shared post-setup image on both sides. *)
}

(* One instrumented golden replay laying the plan's checkpoints: the
   machine rolls back to the post-setup image, then a tracked profile
   run captures the full machine state immediately before the inject
   call of each planned dynamic site (so the injection re-executes
   naturally on resume). [dyn_count] at a capture equals the legacy
   prefix length from run start — [w_setup] executes no machine
   instructions — which is what makes the resumed counters (and hence
   the trace records) bit-identical to a fresh replay. *)
let lay_checkpoints ?(hooks = no_hooks) ?(respect_masks = true)
    (p : prepared) ~(pi : prepared_input) ~(plan : int array) : ff_input =
  if Array.length plan = 0 then
    { ff_pi = pi; ff_checkpoints = [||]; ff_spans = [||] }
  else begin
    let rt = Runtime.create ~respect_masks Runtime.Profile in
    let st = pi.pi_machine in
    Interp.Memory.restore (Interp.Machine.memory st) pi.pi_snapshot;
    Interp.Machine.reset ~budget:Interp.Machine.default_budget st;
    Runtime.attach rt st;
    hooks.h_reset ();
    hooks.h_attach st;
    let inject_slots =
      List.filter_map
        (fun (name, _) -> Interp.Machine.extern_slot st name)
        Fault_model.all_inject_fns
    in
    let nplan = Array.length plan in
    let pidx = ref 0 in
    (* Accumulated golden dirty spans relative to the post-setup image.
       They must be folded in the probe, before the capture's
       [Memory.snapshot] resets the live spans; each fold therefore
       covers exactly the writes since the previous capture (or since
       the post-setup restore for the first one). *)
    let cum = ref Interp.Memory.no_spans in
    (* The probe sees each extern call before it runs: the next live
       site has index [dynamic_sites rt + 1], mirroring the counter
       increment the handler is about to perform. *)
    let probe _st ~slot (args : Interp.Vvalue.t list) =
      let hit =
        !pidx < nplan
        && List.mem slot inject_slots
        && (match args with
           | [ _value; mask; _site ] ->
             ((not respect_masks) || Interp.Vvalue.as_bool mask)
             && Runtime.dynamic_sites rt + 1 = plan.(!pidx)
           | _ -> false)
      in
      if hit then
        cum := Interp.Memory.diff_spans (Interp.Machine.memory st) !cum;
      hit
    in
    let cks = ref [] in
    let on_capture ck =
      cks := (plan.(!pidx), ck, !cum) :: !cks;
      incr pidx
    in
    (match
       Interp.Machine.run_tracked st p.p_workload.Workload.w_fn pi.pi_args
         ~probe ~on_capture
     with
    | _ -> ()
    | exception Interp.Trap.Trap k ->
      raise
        (Golden_run_failed
           (Printf.sprintf "%s input %d (checkpoint replay): %s"
              p.p_workload.Workload.w_name pi.pi_golden.g_input
              (Interp.Trap.to_string k))));
    let laid = Array.of_list (List.rev !cks) in
    {
      ff_pi = pi;
      ff_checkpoints = Array.map (fun (s, ck, _) -> (s, ck)) laid;
      ff_spans = Array.map (fun (_, _, spans) -> spans) laid;
    }
  end

(* Fast-forward variant of [faulty_run_checkpointed]: resume from the
   nearest checkpoint at or before [dynamic_site] (falling back to a
   full checkpointed replay when none exists). The runtime's site
   counter starts at [site - 1]: the skipped prefix observed exactly
   the sites before the checkpointed call, which re-executes first.
   The RNG needs no replay — it is drawn only at the injection, always
   inside the executed suffix. *)
let faulty_run_ff ?(hooks = no_hooks) ?(respect_masks = true) ?fault_kind
    (p : prepared) ~(ff : ff_input) ~dynamic_site ~seed : run_result =
  let cks = ff.ff_checkpoints in
  (* rightmost checkpoint with site <= dynamic_site *)
  let best = ref (-1) in
  let lo = ref 0 and hi = ref (Array.length cks - 1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if fst cks.(mid) <= dynamic_site then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  if !best < 0 then
    faulty_run_checkpointed ~hooks ~respect_masks ?fault_kind p
      ~pi:ff.ff_pi ~dynamic_site ~seed
  else begin
    let site, ck = cks.(!best) in
    let rt =
      Runtime.create ~seed ~respect_masks ?fault_kind ~counter0:(site - 1)
        (Runtime.Inject { dynamic_site })
    in
    let golden = ff.ff_pi.pi_golden in
    let st = ff.ff_pi.pi_machine in
    Runtime.attach rt st;
    hooks.h_reset ();
    hooks.h_attach st;
    let faulty =
      match Interp.Machine.resume ~budget:(fault_budget golden) st ck with
      | _ -> Ok (ff.ff_pi.pi_read_output ())
      | exception Interp.Trap.Trap k -> Error k
    in
    {
      r_outcome =
        Outcome.classify
          ~tol:p.p_workload.Workload.w_out_tolerance
          ~golden:golden.g_output ~faulty ();
      r_injection = Runtime.injected rt;
      r_detected = hooks.h_flagged ();
      r_dyn_instrs = Interp.Machine.dyn_count st;
    }
  end

(* ------------------------------------------------------------------ *)
(* Convergence-pruned execution. The fast-forward path above skips the
   pre-injection prefix but still runs every post-injection suffix to
   completion, even though most injected faults are masked long before
   the program ends (the high benign rates of Fig 11) — from the moment
   the faulty state re-converges with the golden state, the rest of the
   run is provably identical and wasted. The converge-pruned executor
   runs the suffix under position tracking and, at each checkpoint site
   after the injection, compares the machine against the golden
   checkpoint retained at that site ({!Interp.Machine.state_equal}:
   counters, call stack, live registers, dirty-span-restricted memory).
   On a match it terminates immediately and splices the golden
   outcome — Benign, the golden dynamic counters, no detector flag —
   which is byte-identical to what running the suffix out would have
   produced (see DESIGN.md, convergence soundness). *)

(* Physical pruning telemetry for the bench harness: how many faulty
   runs were actually cut short, and how many state comparisons ran.
   Deliberately NOT part of campaign results or traces (those stay pure
   functions of the seed schedule, identical across executors); atomic
   so parallel workers can bump them concurrently. *)
let prunes_performed = Atomic.make 0
let prune_checks_performed = Atomic.make 0

let reset_prune_stats () =
  Atomic.set prunes_performed 0;
  Atomic.set prune_checks_performed 0

let prune_stats () =
  (Atomic.get prunes_performed, Atomic.get prune_checks_performed)

exception Converged

(* Converge-pruned variant of [faulty_run_ff]: identical resume /
   fresh-start selection, but the executed portion runs under
   convergence checks. Delegates to the plain fast-forward path when
   pruning is disabled or no checkpoint site lies after the injection
   (nothing could ever match, so tracked stepping would be pure
   overhead). *)
let faulty_run_pruned ?(hooks = no_hooks) ?(respect_masks = true)
    ?fault_kind (p : prepared) ~(ff : ff_input) ~dynamic_site ~seed :
    run_result =
  let cks = ff.ff_checkpoints in
  let ncks = Array.length cks in
  (* first checkpoint site strictly after the injection: the only sites
     where re-convergence with the golden run can be detected *)
  let j0 = ref 0 in
  while !j0 < ncks && fst cks.(!j0) <= dynamic_site do
    incr j0
  done;
  if (not !prune_enabled) || !j0 >= ncks then
    faulty_run_ff ~hooks ~respect_masks ?fault_kind p ~ff ~dynamic_site
      ~seed
  else begin
    let golden = ff.ff_pi.pi_golden in
    let st = ff.ff_pi.pi_machine in
    (* rightmost checkpoint with site <= dynamic_site, as in
       [faulty_run_ff] *)
    let best = ref (-1) in
    let lo = ref 0 and hi = ref (ncks - 1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if fst cks.(mid) <= dynamic_site then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    let rt =
      if !best >= 0 then
        Runtime.create ~seed ~respect_masks ?fault_kind
          ~counter0:(fst cks.(!best) - 1)
          (Runtime.Inject { dynamic_site })
      else
        Runtime.create ~seed ~respect_masks ?fault_kind
          (Runtime.Inject { dynamic_site })
    in
    let inject_slots =
      List.filter_map
        (fun (name, _) -> Interp.Machine.extern_slot st name)
        Fault_model.all_inject_fns
    in
    let next = ref !j0 in
    (* A run that has failed this many consecutive comparisons has
       almost certainly diverged for good (a flipped value keeps
       propagating); give up checking and let the detach run the rest
       of the suffix at full speed. Purely physical — the run still
       completes and classifies exactly as the other executors say. *)
    let max_failed_checks = 2 in
    let failed = ref 0 in
    let check mst stack ~slot (args : Interp.Vvalue.t list) =
      (if !next < ncks && List.mem slot inject_slots then
         match args with
         | [ _value; mask; _site ]
           when (not respect_masks) || Interp.Vvalue.as_bool mask ->
           let site = Runtime.dynamic_sites rt + 1 in
           while !next < ncks && fst cks.(!next) < site do
             incr next
           done;
           if !next < ncks && fst cks.(!next) = site then begin
             Atomic.incr prune_checks_performed;
             if
               Interp.Machine.state_equal mst stack
                 (snd cks.(!next))
                 ~since:ff.ff_spans.(!next)
             then raise Converged;
             incr failed;
             incr next
           end
         | _ -> ());
      !next < ncks && !failed < max_failed_checks
    in
    let budget = fault_budget golden in
    let completion =
      if !best >= 0 then begin
        (* mirror [faulty_run_ff]'s resume discipline exactly *)
        Runtime.attach rt st;
        hooks.h_reset ();
        hooks.h_attach st;
        match
          Interp.Machine.resume_converge ~budget st (snd cks.(!best)) ~check
        with
        | _ -> `Ran (Ok (ff.ff_pi.pi_read_output ()))
        | exception Interp.Trap.Trap k -> `Ran (Error k)
        | exception Converged -> `Pruned
      end
      else begin
        (* mirror [faulty_run_checkpointed]'s fresh-start discipline *)
        Interp.Memory.restore (Interp.Machine.memory st) ff.ff_pi.pi_snapshot;
        Interp.Machine.reset ~budget st;
        Runtime.attach rt st;
        hooks.h_reset ();
        hooks.h_attach st;
        match
          Interp.Machine.run_converge st p.p_workload.Workload.w_fn
            ff.ff_pi.pi_args ~check
        with
        | _ -> `Ran (Ok (ff.ff_pi.pi_read_output ()))
        | exception Interp.Trap.Trap k -> `Ran (Error k)
        | exception Converged -> `Pruned
      end
    in
    match completion with
    | `Ran faulty ->
      {
        r_outcome =
          Outcome.classify
            ~tol:p.p_workload.Workload.w_out_tolerance
            ~golden:golden.g_output ~faulty ();
        r_injection = Runtime.injected rt;
        r_detected = hooks.h_flagged ();
        r_dyn_instrs = Interp.Machine.dyn_count st;
      }
    | `Pruned ->
      (* Splice the golden completion: equal state at the check site
         means the rest of the run reads and writes exactly what the
         golden run did — outputs come back golden (Benign), the final
         dynamic count equals the golden one, the injection record is
         already live, and detectors cannot run under this executor
         (detector campaigns degrade to the checkpointed tier). *)
      Atomic.incr prunes_performed;
      {
        r_outcome = Outcome.Benign;
        r_injection = Runtime.injected rt;
        r_detected = hooks.h_flagged ();
        r_dyn_instrs = golden.g_dyn_instrs;
      }
  end

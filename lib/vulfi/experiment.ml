(** One fault-injection experiment = two executions of the instrumented
    program on the same input (paper §IV-B): a fault-free profiling run
    that records the output and the number of dynamic fault sites, and a
    faulty run that flips one bit at a uniformly chosen dynamic site. *)

(* Extra runtime surface (e.g. error detectors) to attach to machines. *)
type hooks = {
  h_attach : Interp.Machine.state -> unit;
  h_flagged : unit -> bool;  (** did a detector fire during the run? *)
  h_reset : unit -> unit;
}

let no_hooks =
  {
    h_attach = (fun _ -> ());
    h_flagged = (fun () -> false);
    h_reset = (fun () -> ());
  }

type prepared = {
  p_workload : Workload.t;
  p_target : Vir.Target.t;
  p_category : Analysis.Sites.category;
  p_code : Interp.Compile.cmodule;
  p_instr : Instrument.t;
}

(* Build, select fault sites for [category], instrument, verify and
   compile a workload. [transform] optionally rewrites the module
   before instrumentation (used to insert error detectors). *)
let prepare ?(transform = fun (m : Vir.Vmodule.t) -> m)
    (w : Workload.t) (target : Vir.Target.t)
    (category : Analysis.Sites.category) : prepared =
  let m = transform (w.Workload.w_build target) in
  let targets =
    Analysis.Sites.select (Analysis.Sites.targets_of_module m) category
  in
  let instr = Instrument.run m targets in
  {
    p_workload = w;
    p_target = target;
    p_category = category;
    p_code = Interp.Compile.compile_module instr.Instrument.instrumented;
    p_instr = instr;
  }

type golden = {
  g_input : int;
  g_output : Outcome.output;
  g_dyn_sites : int;   (** dynamic fault sites N *)
  g_dyn_instrs : int;  (** dynamic instructions, for budget + Table I *)
}

exception Golden_run_failed of string

(* Fault-free profiling run. [respect_masks:false] reproduces a
   mask-oblivious injector for the ablation study. *)
let golden_run ?(hooks = no_hooks) ?(respect_masks = true) (p : prepared)
    ~input : golden =
  let rt = Runtime.create ~respect_masks Runtime.Profile in
  let st = Interp.Machine.create p.p_code in
  Runtime.attach rt st;
  hooks.h_reset ();
  hooks.h_attach st;
  let args, read_output =
    p.p_workload.Workload.w_setup ~input st
  in
  (match Interp.Machine.run st p.p_workload.Workload.w_fn args with
  | _ -> ()
  | exception Interp.Trap.Trap k ->
    raise
      (Golden_run_failed
         (Printf.sprintf "%s input %d: %s" p.p_workload.Workload.w_name
            input (Interp.Trap.to_string k))));
  {
    g_input = input;
    g_output = read_output ();
    g_dyn_sites = Runtime.dynamic_sites rt;
    g_dyn_instrs = Interp.Machine.dyn_count st;
  }

(* ------------------------------------------------------------------ *)
(* Checkpointed execution. Per (cell, input) the legacy path repeats
   machine construction, [w_setup] and the golden run for every
   experiment even though inputs come from a small finite pool. A
   prepared input does that work once: build a machine, run [w_setup],
   snapshot the post-setup memory image, run the golden run once — then
   every faulty run restores the snapshot and re-arms the same machine.
   Bit-identity with the legacy path holds because the bump allocator is
   deterministic (restored addresses equal fresh ones), [w_setup]
   writes memory deterministically per input, and the per-run RNG is
   seeded from the experiment seed in both paths. *)

type prepared_input = {
  pi_golden : golden;
  pi_machine : Interp.Machine.state;
  pi_snapshot : Interp.Memory.snapshot;  (** post-setup memory image *)
  pi_args : Interp.Vvalue.t list;
      (** owned by this record and reused across every faulty run;
          sound because [Machine.run] copies argument lanes into the
          entry frame's pinned buffers rather than aliasing them *)
  pi_read_output : unit -> Outcome.output;
}

(* One-time stage: setup, snapshot, golden run. Mirrors [golden_run]
   exactly (same machine construction and attach order) so the golden
   numbers are identical; the snapshot is taken between setup and the
   profiling run so every later restore lands on the post-setup image. *)
let prepare_input ?(hooks = no_hooks) ?(respect_masks = true)
    (p : prepared) ~input : prepared_input =
  let rt = Runtime.create ~respect_masks Runtime.Profile in
  let st = Interp.Machine.create p.p_code in
  Runtime.attach rt st;
  hooks.h_reset ();
  hooks.h_attach st;
  let args, read_output = p.p_workload.Workload.w_setup ~input st in
  let snap = Interp.Memory.snapshot (Interp.Machine.memory st) in
  (match Interp.Machine.run st p.p_workload.Workload.w_fn args with
  | _ -> ()
  | exception Interp.Trap.Trap k ->
    raise
      (Golden_run_failed
         (Printf.sprintf "%s input %d: %s" p.p_workload.Workload.w_name
            input (Interp.Trap.to_string k))));
  {
    pi_golden =
      {
        g_input = input;
        g_output = read_output ();
        g_dyn_sites = Runtime.dynamic_sites rt;
        g_dyn_instrs = Interp.Machine.dyn_count st;
      };
    pi_machine = st;
    pi_snapshot = snap;
    pi_args = args;
    pi_read_output = read_output;
  }

type run_result = {
  r_outcome : Outcome.t;
  r_injection : Runtime.injection_record option;
  r_detected : bool;  (** a detector flagged the run *)
  r_dyn_instrs : int;  (** dynamic instructions of the faulty run *)
}

(* Faulty run at 1-based [dynamic_site]; [seed] fixes the bit choice. *)
let faulty_run ?(hooks = no_hooks) ?(respect_masks = true) ?fault_kind
    (p : prepared) ~(golden : golden) ~dynamic_site ~seed : run_result =
  let rt =
    Runtime.create ~seed ~respect_masks ?fault_kind
      (Runtime.Inject { dynamic_site })
  in
  (* A fault-induced loop must terminate as an observable hang: a run
     exceeding ten times the fault-free execution (plus slack for tiny
     kernels) is classified as budget-exhausted. *)
  let budget = (golden.g_dyn_instrs * 10) + 10_000 in
  let st = Interp.Machine.create ~budget p.p_code in
  Runtime.attach rt st;
  hooks.h_reset ();
  hooks.h_attach st;
  let args, read_output =
    p.p_workload.Workload.w_setup ~input:golden.g_input st
  in
  let faulty =
    match Interp.Machine.run st p.p_workload.Workload.w_fn args with
    | _ -> Ok (read_output ())
    | exception Interp.Trap.Trap k -> Error k
  in
  {
    r_outcome =
      Outcome.classify
        ~tol:p.p_workload.Workload.w_out_tolerance
        ~golden:golden.g_output ~faulty ();
    r_injection = Runtime.injected rt;
    r_detected = hooks.h_flagged ();
    r_dyn_instrs = Interp.Machine.dyn_count st;
  }

(* Faulty run against a prepared input: restore the post-setup memory
   image and re-arm the cached machine instead of rebuilding both.
   Semantically identical to [faulty_run] — same budget rule, same
   attach order, same classification. *)
let faulty_run_checkpointed ?(hooks = no_hooks) ?(respect_masks = true)
    ?fault_kind (p : prepared) ~(pi : prepared_input) ~dynamic_site
    ~seed : run_result =
  let rt =
    Runtime.create ~seed ~respect_masks ?fault_kind
      (Runtime.Inject { dynamic_site })
  in
  let golden = pi.pi_golden in
  let budget = (golden.g_dyn_instrs * 10) + 10_000 in
  let st = pi.pi_machine in
  Interp.Memory.restore (Interp.Machine.memory st) pi.pi_snapshot;
  Interp.Machine.reset ~budget st;
  Runtime.attach rt st;
  hooks.h_reset ();
  hooks.h_attach st;
  let faulty =
    match Interp.Machine.run st p.p_workload.Workload.w_fn pi.pi_args with
    | _ -> Ok (pi.pi_read_output ())
    | exception Interp.Trap.Trap k -> Error k
  in
  {
    r_outcome =
      Outcome.classify
        ~tol:p.p_workload.Workload.w_out_tolerance
        ~golden:golden.g_output ~faulty ();
    r_injection = Runtime.injected rt;
    r_detected = hooks.h_flagged ();
    r_dyn_instrs = Interp.Machine.dyn_count st;
  }

(** A fixed-size OCaml 5 domain worker pool.

    [create ~jobs] starts [jobs - 1] worker domains; the submitting
    thread is the remaining worker, so [map] uses exactly [jobs]
    domains of compute. The pool is reused across [map] calls (a
    campaign issues one batch per 100-experiment round), which keeps
    domain spawning off the per-batch path.

    [map] preserves order: result [i] is [f arr.(i)] regardless of
    which domain executed it. Work is distributed by an atomic cursor,
    so domains self-balance across items of uneven cost (experiments
    that crash early are much cheaper than ones that run to
    completion). Exceptions raised by [f] are caught in the worker and
    re-raised (first one wins) in the submitting thread after the batch
    drains. *)

type job = {
  run : int -> int -> unit;
      (** [run wid i] executes item [i] on worker [wid]; never raises *)
  n : int;
  next : int Atomic.t;       (** work cursor *)
  completed : int Atomic.t;  (** items fully executed *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;   (** signalled when a new batch is published *)
  finished : Condition.t;  (** signalled when a batch's last item ends *)
  mutable job : job option;
  mutable generation : int;  (** bumped once per published batch *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

(* Pull items until the batch cursor is exhausted. [wid] identifies
   the draining worker (0 = submitting thread, 1.. = pool domains). *)
let drain t job wid =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.n then continue_ := false
    else begin
      job.run wid i;
      if 1 + Atomic.fetch_and_add job.completed 1 = job.n then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      end
    end
  done

let rec worker t wid last_gen =
  Mutex.lock t.mutex;
  let has_fresh_job () =
    t.generation <> last_gen && Option.is_some t.job
  in
  while (not t.stop) && not (has_fresh_job ()) do
    Condition.wait t.work t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let job = Option.get t.job in
    Mutex.unlock t.mutex;
    drain t job wid;
    worker t wid gen
  end

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (size - 1)
      (fun k -> Domain.spawn (fun () -> worker t (k + 1) 0));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_with_worker t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let error = Atomic.make None in
    let run wid i =
      match f wid arr.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set error None (Some (e, bt)))
    in
    let job = { run; n; next = Atomic.make 0; completed = Atomic.make 0 } in
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* the submitting thread is worker 0 *)
    drain t job 0;
    Mutex.lock t.mutex;
    while Atomic.get job.completed < n do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    Mutex.unlock t.mutex;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map t f arr = map_with_worker t (fun _wid x -> f x) arr

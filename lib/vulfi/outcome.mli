(** Outcome classification of a fault-injection experiment (paper §IV-B). *)

(** Observable output of a run: the contents of the arrays designated as
    program output plus the entry function's return value. *)
type output = {
  o_f32 : float array list;
  o_i32 : int array list;
  o_ret : Interp.Vvalue.t option;
}

val empty_output : output

(** [output_equal ?tol ?abs_tol a b] compares two outputs. With
    [tol = 0.] (the default) float arrays compare bit-exactly; a
    positive [tol] treats float elements within that relative distance
    as equal, modelling comparison of printed outputs rounded to a few
    significant digits. A purely relative test can never accept a
    near-zero perturbation of a zero golden value, so a positive [tol]
    also applies an absolute floor [abs_tol] (default [1e-12]): lanes
    closer than it compare equal regardless of magnitude. Integer
    outputs always compare exactly. *)
val output_equal : ?tol:float -> ?abs_tol:float -> output -> output -> bool

(** The paper's three outcome classes. *)
type t =
  | Sdc  (** silent data corruption: outputs differ *)
  | Benign  (** outputs identical *)
  | Crash of Interp.Trap.kind
      (** trap, including hangs via the execution budget *)

(** Short class name: ["SDC"], ["benign"] or ["crash"]. *)
val name : t -> string

(** Full description, including the trap kind for crashes. *)
val to_string : t -> string

(** [classify ?tol ?abs_tol ~golden ~faulty ()] classifies a faulty run
    against the fault-free output. *)
val classify :
  ?tol:float ->
  ?abs_tol:float ->
  golden:output ->
  faulty:(output, Interp.Trap.kind) result ->
  unit ->
  t

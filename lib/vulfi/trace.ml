(** Campaign telemetry: one structured JSONL record per experiment plus
    a per-cell summary record, written through an ordered sink.

    Determinism contract: with [timings] off (the default) every record
    is a pure function of the campaign configuration and the seed
    schedule, so the trace produced by [Campaign.run] is byte-identical
    to the one produced by [Campaign.run_parallel] at any [-j N]. The
    drivers guarantee ordering — workers buffer their results and the
    (sequential) protocol loop emits them in experiment order. Per-
    experiment wall time is inherently nondeterministic, so it is an
    opt-in sink feature ([timings:true]) rather than a default field. *)

(* v2 added the checkpointing counters [golden_runs]/[golden_reused] to
   the summary record; v3 added the fast-forward counters
   [checkpoints]/[ff_resumed]; v4 adds the convergence-pruning counters
   [pruned]/[prune_checks] and an optional [executor] header field
   (present only when a detector cell degraded the requested executor).
   All six counters are derived from the seed schedule (distinct inputs
   drawn, scheduled injection sites), not from physical cache or
   executor behaviour, so all executors write identical traces.
   [report] accepts v1 through v4. *)
let schema = "vulfi-trace-v4"

let schema_v1 = "vulfi-trace-v1"

let schema_v2 = "vulfi-trace-v2"

let schema_v3 = "vulfi-trace-v3"

type sink = {
  s_emit : Json.t -> unit;
  s_close : unit -> unit;
  s_timings : bool;
}

let emit s j = s.s_emit j
let close s = s.s_close ()
let timings s = s.s_timings

(* The [executor] field is emitted only when given — front-ends pass it
   only when detector hooks degraded the requested executor, so traces
   of non-degraded runs stay byte-identical across all four executors. *)
let header_record ?executor () =
  Json.Obj
    ([ ("type", Json.String "header"); ("schema", Json.String schema) ]
    @
    match executor with
    | None -> []
    | Some e -> [ ("executor", Json.String e) ])

let make ?(timings = false) ?executor ~emit:e ~close:c () =
  let s = { s_emit = e; s_close = c; s_timings = timings } in
  e (header_record ?executor ());
  s

let to_channel ?timings ?executor oc =
  make ?timings ?executor
    ~emit:(fun j ->
      output_string oc (Json.to_string j);
      output_char oc '\n')
    ~close:(fun () -> flush oc)
    ()

let to_file ?timings ?executor path =
  let oc = open_out path in
  make ?timings ?executor
    ~emit:(fun j ->
      output_string oc (Json.to_string j);
      output_char oc '\n')
    ~close:(fun () -> close_out oc)
    ()

let to_buffer ?timings ?executor buf =
  make ?timings ?executor
    ~emit:(fun j ->
      Buffer.add_string buf (Json.to_string j);
      Buffer.add_char buf '\n')
    ~close:(fun () -> ())
    ()

(* JSON has no non-finite numbers; the margin is [infinity] until a
   second campaign exists. *)
let num f = if Float.is_finite f then Json.Float f else Json.Null

let experiment_record ~workload ~target ~category ~campaign ~experiment
    ~input ~golden_sites ~(result : Experiment.run_result) ?wall_s () :
    Json.t =
  let outcome_fields =
    match result.Experiment.r_outcome with
    | Outcome.Crash k ->
      [
        ("outcome", Json.String "crash");
        ("trap", Json.String (Interp.Trap.to_string k));
      ]
    | o -> [ ("outcome", Json.String (Outcome.name o)) ]
  in
  let injection_fields =
    match result.Experiment.r_injection with
    | None ->
      [
        ("static_site", Json.Null);
        ("dynamic_site", Json.Null);
        ("bit", Json.Null);
      ]
    | Some inj ->
      [
        ("static_site", Json.Int inj.Runtime.inj_static_site);
        ("dynamic_site", Json.Int inj.Runtime.inj_dynamic_site);
        (* -1 marks whole-register fault kinds (random value, stuck-at) *)
        ("bit", Json.Int inj.Runtime.inj_bit);
      ]
  in
  Json.Obj
    ([
       ("type", Json.String "experiment");
       ("workload", Json.String workload);
       ("target", Json.String (Vir.Target.name target));
       ("category", Json.String (Analysis.Sites.category_name category));
       ("campaign", Json.Int campaign);
       ("experiment", Json.Int experiment);
       ("input", Json.Int input);
       ("golden_sites", Json.Int golden_sites);
     ]
    @ outcome_fields @ injection_fields
    @ [
        ("detected", Json.Bool result.Experiment.r_detected);
        ("dyn_instrs", Json.Int result.Experiment.r_dyn_instrs);
      ]
    @ match wall_s with None -> [] | Some w -> [ ("wall_s", num w) ])

let summary_record ~workload ~target ~category ~detectors ~campaigns
    ~sdc_rates ~n_experiments ~n_sdc ~n_benign ~n_crash ~n_detected
    ~n_detected_sdc ~margin ~near_normal ~static_sites ~avg_dyn_sites
    ~avg_dyn_instrs ~golden_runs ~golden_reused ~checkpoints ~ff_resumed
    ~pruned ~prune_checks : Json.t =
  Json.Obj
    [
      ("type", Json.String "summary");
      ("workload", Json.String workload);
      ("target", Json.String (Vir.Target.name target));
      ("category", Json.String (Analysis.Sites.category_name category));
      (* were detector hooks attached? (`vulfi report` needs this to
         know whether to print a Fig 12 row even when nothing fired) *)
      ("detectors", Json.Bool detectors);
      ("campaigns", Json.Int campaigns);
      ("experiments", Json.Int n_experiments);
      ("sdc", Json.Int n_sdc);
      ("benign", Json.Int n_benign);
      ("crash", Json.Int n_crash);
      ("detected", Json.Int n_detected);
      ("detected_sdc", Json.Int n_detected_sdc);
      ("sdc_rates", Json.List (List.map (fun r -> Json.Float r) sdc_rates));
      ("margin", num margin);
      ("near_normal", Json.Bool near_normal);
      ("static_sites", Json.Int static_sites);
      ("avg_dyn_sites", Json.Float avg_dyn_sites);
      ("avg_dyn_instrs", Json.Float avg_dyn_instrs);
      (* distinct inputs the schedule drew (= golden runs any executor
         must perform) and experiments that reused a cached golden *)
      ("golden_runs", Json.Int golden_runs);
      ("golden_reused", Json.Int golden_reused);
      (* checkpoints the fast-forward plan lays and experiments it
         resumes — again schedule-derived, not executor behaviour *)
      ("checkpoints", Json.Int checkpoints);
      ("ff_resumed", Json.Int ff_resumed);
      (* convergence-pruning opportunity counts (experiments with a
         later plan site, and how many such sites in total) — schedule-
         derived upper bounds; the physical prune count is bench-only *)
      ("pruned", Json.Int pruned);
      ("prune_checks", Json.Int prune_checks);
    ]

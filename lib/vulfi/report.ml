(** Plain-text rendering of campaign results in the shape of the
    paper's tables and figures. *)

let pct x = Printf.sprintf "%5.1f%%" (100.0 *. x)

(* One Fig 11-style row: SDC / Benign / Crash per campaign cell. *)
let fig11_row (r : Campaign.result) =
  Printf.sprintf "%-16s %-4s %-9s  SDC %s  Benign %s  Crash %s  (±%.1f%%, %d campaigns)"
    r.Campaign.c_workload
    (Vir.Target.name r.Campaign.c_target)
    (Analysis.Sites.category_name r.Campaign.c_category)
    (pct (Campaign.sdc_rate r))
    (pct (Campaign.benign_rate r))
    (pct (Campaign.crash_rate r))
    (100.0 *. r.Campaign.c_margin)
    r.Campaign.c_campaigns

(* One Fig 12-style row: SDC rate and detection rate. *)
let fig12_row (r : Campaign.result) =
  Printf.sprintf "%-16s %-9s  SDC %s  SDC-detection %s  (detected %d / sdc %d)"
    r.Campaign.c_workload
    (Analysis.Sites.category_name r.Campaign.c_category)
    (pct (Campaign.sdc_rate r))
    (pct (Campaign.sdc_detection_rate r))
    r.Campaign.c_totals.Campaign.n_detected_sdc
    r.Campaign.c_totals.Campaign.n_sdc

(* One Fig 10-style row: scalar/vector composition per category. *)
let fig10_row ~workload ~target (census : (Analysis.Sites.category * Analysis.Instmix.mix) list) =
  let cell (cat, mix) =
    Printf.sprintf "%s: %s vector (%d/%d)"
      (Analysis.Sites.category_name cat)
      (pct (Analysis.Instmix.vector_fraction mix))
      mix.Analysis.Instmix.vector_count
      (Analysis.Instmix.total mix)
  in
  Printf.sprintf "%-16s %-4s  %s" workload (Vir.Target.name target)
    (String.concat "  " (List.map cell census))

(* One Table I-style row. *)
let table1_row ~workload ~language ~input ~target ~dyn_instrs =
  Printf.sprintf "%-16s %-6s %-28s %-4s %12.3f M" workload language input
    (Vir.Target.name target)
    (float_of_int dyn_instrs /. 1.0e6)

(* Sweep progress/ETA line. The degenerate ticks need explicit guards:
   on the first tick [done_cells] is 0 (ETA would divide by zero) and
   [elapsed_s] can be 0.0 on coarse clocks (the rate would be inf/nan),
   so the rate clamps to 0 and the ETA renders as "--" until both are
   well-defined. *)
let progress_line ~label ~done_cells ~total_cells ~done_exps ~elapsed_s =
  let rate =
    if elapsed_s > 0.0 then float_of_int done_exps /. elapsed_s else 0.0
  in
  let rate = if Float.is_finite rate then rate else 0.0 in
  let eta =
    if done_cells <= 0 || elapsed_s <= 0.0 then None
    else
      let e =
        elapsed_s /. float_of_int done_cells
        *. float_of_int (max 0 (total_cells - done_cells))
      in
      if Float.is_finite e then Some e else None
  in
  match eta with
  | Some e ->
    Printf.sprintf "%s: %d/%d cells done, %.0f experiments/s, ETA %.0f s"
      label done_cells total_cells rate e
  | None ->
    Printf.sprintf "%s: %d/%d cells done, %.0f experiments/s, ETA --" label
      done_cells total_cells rate

(* ------------------------------------------------------------------ *)
(* Trace re-aggregation: rebuild Campaign.result values from the
   per-experiment records of a JSONL trace (the `vulfi report`
   subcommand), validating the schema along the way and
   cross-checking the recomputed aggregates against the trace's own
   summary records. The float pipelines (per-campaign rates, margin,
   averages) replicate the campaign drivers' accumulation order
   exactly, so a replayed table is byte-identical to the live one. *)

type replay = {
  rp_result : Campaign.result;
  rp_detectors : bool;
  rp_summary : [ `Match | `Mismatch of string | `Missing ];
}

exception Bad_trace of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_trace m)) fmt

(* one parsed experiment record *)
type exp_rec = {
  er_campaign : int;
  er_experiment : int;
  er_input : int;
  er_golden_sites : int;
  er_outcome : string;
  er_detected : bool;
}

type cell_acc = {
  mutable ca_exps : exp_rec list;  (* reversed arrival order *)
  mutable ca_summary : Json.t option;
}

(* Returns the remaining records plus the trace's schema version: v1
   through v4 are all replayable (v2 merely added the golden counters,
   which are recomputable anyway; v3 added the fast-forward counters
   and v4 the pruning counters, all adopted from the summary — the
   version decides what the summary cross-check may expect). *)
let check_header = function
  | [] -> bad "empty trace (no header record)"
  | header :: rest ->
    let version =
      match (Json.member "type" header, Json.member "schema" header) with
      | Some (Json.String "header"), Some (Json.String s) ->
        if s = Trace.schema then `V4
        else if s = Trace.schema_v3 then `V3
        else if s = Trace.schema_v2 then `V2
        else if s = Trace.schema_v1 then `V1
        else
          bad "unsupported trace schema %S (expected %S, %S, %S or %S)" s
            Trace.schema Trace.schema_v3 Trace.schema_v2 Trace.schema_v1
      | _ -> bad "first record is not a trace header"
    in
    (rest, version)

(* The header's optional [executor] field (v4) — present only when a
   detector cell degraded the requested executor; [vulfi report] prints
   it so the degradation stays visible after the fact. *)
let header_executor (records : Json.t list) : string option =
  match records with
  | header :: _ -> (
    match Json.member "executor" header with
    | Some (Json.String e) -> Some e
    | _ -> None)
  | [] -> None

let replay_cell ~version ((workload, target_s, category_s) as _key)
    (c : cell_acc) : replay =
  let cell_name = Printf.sprintf "%s/%s/%s" workload target_s category_s in
  let target =
    match Vir.Target.of_string target_s with
    | Some t -> t
    | None -> bad "%s: unknown target" cell_name
  in
  let category =
    match Analysis.Sites.category_of_string category_s with
    | Some c -> c
    | None -> bad "%s: unknown category" cell_name
  in
  let exps = List.rev c.ca_exps in
  let campaigns =
    1 + List.fold_left (fun m e -> max m e.er_campaign) (-1) exps
  in
  if campaigns = 0 then bad "%s: no experiment records" cell_name;
  let per_n = Array.make campaigns 0 in
  let per_sdc = Array.make campaigns 0 in
  let count p = List.length (List.filter p exps) in
  List.iter
    (fun e ->
      if e.er_campaign < 0 || e.er_experiment < 0 then
        bad "%s: negative campaign/experiment index" cell_name;
      per_n.(e.er_campaign) <- per_n.(e.er_campaign) + 1;
      if e.er_outcome = "SDC" then
        per_sdc.(e.er_campaign) <- per_sdc.(e.er_campaign) + 1)
    exps;
  Array.iteri
    (fun i n -> if n = 0 then bad "%s: campaign %d has no records" cell_name i)
    per_n;
  (* per-campaign SDC rates in campaign order; the protocol accumulates
     them newest-first, and finalize computes the margin on that
     reversed list — mirror both. *)
  let rates_asc =
    Array.to_list
      (Array.init campaigns (fun i ->
           float_of_int per_sdc.(i) /. float_of_int per_n.(i)))
  in
  let rates_rev = List.rev rates_asc in
  let margin = Stats.margin_of_error rates_rev in
  let near_normal = Stats.near_normal rates_rev in
  let totals =
    {
      Campaign.n_experiments = List.length exps;
      n_sdc = count (fun e -> e.er_outcome = "SDC");
      n_benign = count (fun e -> e.er_outcome = "benign");
      n_crash = count (fun e -> e.er_outcome = "crash");
      n_detected = count (fun e -> e.er_detected);
      n_detected_sdc =
        count (fun e -> e.er_detected && e.er_outcome = "SDC");
    }
  in
  (* distinct inputs, ascending — the order finalize averages goldens
     in — with a consistency check on the recorded site counts *)
  let by_input = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt by_input e.er_input with
      | None -> Hashtbl.add by_input e.er_input e.er_golden_sites
      | Some s ->
        if s <> e.er_golden_sites then
          bad "%s: input %d has inconsistent golden_sites" cell_name
            e.er_input)
    exps;
  let goldens =
    List.sort compare
      (Hashtbl.fold (fun i s acc -> (i, s) :: acc) by_input [])
  in
  let avg_dyn_sites =
    match goldens with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun a (_, s) -> a +. float_of_int s) 0.0 goldens
      /. float_of_int (List.length goldens)
  in
  (* the checkpointing counters are pure functions of the schedule:
     distinct inputs drawn, and experiments beyond the first per input *)
  let golden_runs = List.length goldens in
  let golden_reused = totals.Campaign.n_experiments - golden_runs in
  (* static_sites, avg_dyn_instrs, the detectors flag and the v3
     fast-forward counters describe the campaign setup, golden runs and
     seed schedule only and are not recomputable from experiment
     records: adopt them from the summary record, and cross-check
     everything that is recomputable. *)
  let ( static_sites,
        avg_dyn_instrs,
        detectors,
        ff_counters,
        prune_counters,
        summary_status ) =
    match c.ca_summary with
    | None ->
      (0, 0.0, totals.Campaign.n_detected > 0, (0, 0), (0, 0), `Missing)
    | Some s ->
      let int_field name =
        match Json.member name s with
        | Some (Json.Int n) -> n
        | _ -> bad "%s: summary missing integer %S" cell_name name
      in
      let float_field name =
        match Option.bind (Json.member name s) Json.get_float with
        | Some f -> f
        | None -> bad "%s: summary missing number %S" cell_name name
      in
      let mismatches = ref [] in
      let chk name ok = if not ok then mismatches := name :: !mismatches in
      chk "campaigns" (int_field "campaigns" = campaigns);
      chk "experiments" (int_field "experiments" = totals.Campaign.n_experiments);
      chk "sdc" (int_field "sdc" = totals.Campaign.n_sdc);
      chk "benign" (int_field "benign" = totals.Campaign.n_benign);
      chk "crash" (int_field "crash" = totals.Campaign.n_crash);
      chk "detected" (int_field "detected" = totals.Campaign.n_detected);
      chk "detected_sdc"
        (int_field "detected_sdc" = totals.Campaign.n_detected_sdc);
      chk "sdc_rates"
        (match Json.member "sdc_rates" s with
        | Some (Json.List l) -> (
          try List.for_all2 (fun j r -> Json.get_float j = Some r) l rates_asc
          with Invalid_argument _ -> false)
        | _ -> false);
      chk "margin"
        (match Json.member "margin" s with
        | Some Json.Null -> not (Float.is_finite margin)
        | Some j -> Json.get_float j = Some margin
        | None -> false);
      chk "near_normal"
        (Json.member "near_normal" s = Some (Json.Bool near_normal));
      chk "avg_dyn_sites" (float_field "avg_dyn_sites" = avg_dyn_sites);
      (match version with
      | `V1 -> ()  (* v1 summaries have no golden counters *)
      | `V2 | `V3 | `V4 ->
        chk "golden_runs" (int_field "golden_runs" = golden_runs);
        chk "golden_reused" (int_field "golden_reused" = golden_reused));
      (* the fast-forward and pruning counters depend on the master
         seed (scheduled injection sites), which the trace does not
         carry — adoptable, not recomputable *)
      let ff_counters =
        match version with
        | `V1 | `V2 -> (0, 0)
        | `V3 | `V4 -> (int_field "checkpoints", int_field "ff_resumed")
      in
      let prune_counters =
        match version with
        | `V1 | `V2 | `V3 -> (0, 0)
        | `V4 -> (int_field "pruned", int_field "prune_checks")
      in
      let status =
        match !mismatches with
        | [] -> `Match
        | ms -> `Mismatch (String.concat ", " (List.rev ms))
      in
      let detectors =
        match Json.member "detectors" s with
        | Some (Json.Bool b) -> b
        | _ -> bad "%s: summary missing boolean \"detectors\"" cell_name
      in
      (int_field "static_sites", float_field "avg_dyn_instrs", detectors,
       ff_counters, prune_counters, status)
  in
  let checkpoints, ff_resumed = ff_counters in
  let pruned, prune_checks = prune_counters in
  {
    rp_result =
      {
        Campaign.c_workload = workload;
        c_target = target;
        c_category = category;
        c_campaigns = campaigns;
        c_sdc_rates = rates_asc;
        c_totals = totals;
        c_margin = margin;
        c_near_normal = near_normal;
        c_static_sites = static_sites;
        c_avg_dynamic_sites = avg_dyn_sites;
        c_avg_dynamic_instrs = avg_dyn_instrs;
        c_golden_runs = golden_runs;
        c_golden_reused = golden_reused;
        c_checkpoints = checkpoints;
        c_ff_resumed = ff_resumed;
        c_pruned = pruned;
        c_prune_checks = prune_checks;
      };
    rp_detectors = detectors;
    rp_summary = summary_status;
  }

let replay_of_trace (records : Json.t list) : (replay list, string) result =
  try
    let rest, version = check_header records in
    let cells = Hashtbl.create 8 in
    let order = ref [] in
    let get_cell key =
      match Hashtbl.find_opt cells key with
      | Some c -> c
      | None ->
        let c = { ca_exps = []; ca_summary = None } in
        Hashtbl.add cells key c;
        order := key :: !order;
        c
    in
    List.iteri
      (fun idx j ->
        let at = idx + 2 in
        (* 1-based record number, counting the header *)
        let str name =
          match Json.member name j with
          | Some (Json.String s) -> s
          | _ -> bad "record %d: missing string field %S" at name
        in
        let int_ name =
          match Json.member name j with
          | Some (Json.Int n) -> n
          | _ -> bad "record %d: missing integer field %S" at name
        in
        let bool_ name =
          match Json.member name j with
          | Some (Json.Bool b) -> b
          | _ -> bad "record %d: missing boolean field %S" at name
        in
        match Json.member "type" j with
        | Some (Json.String "experiment") ->
          let key = (str "workload", str "target", str "category") in
          (match
             ( Json.member "static_site" j,
               Json.member "dynamic_site" j,
               Json.member "bit" j )
           with
          | ( Some (Json.Int _ | Json.Null),
              Some (Json.Int _ | Json.Null),
              Some (Json.Int _ | Json.Null) ) ->
            ()
          | _ -> bad "record %d: missing injection fields" at);
          let outcome = str "outcome" in
          (match outcome with
          | "SDC" | "benign" -> ()
          | "crash" -> ignore (str "trap")
          | o -> bad "record %d: unknown outcome %S" at o);
          ignore (int_ "dyn_instrs");
          let c = get_cell key in
          c.ca_exps <-
            {
              er_campaign = int_ "campaign";
              er_experiment = int_ "experiment";
              er_input = int_ "input";
              er_golden_sites = int_ "golden_sites";
              er_outcome = outcome;
              er_detected = bool_ "detected";
            }
            :: c.ca_exps
        | Some (Json.String "summary") ->
          let key = (str "workload", str "target", str "category") in
          let c = get_cell key in
          (match c.ca_summary with
          | Some _ ->
            bad "record %d: duplicate summary for %s/%s/%s" at (str "workload")
              (str "target") (str "category")
          | None -> c.ca_summary <- Some j)
        | Some (Json.String "header") -> bad "record %d: duplicate header" at
        | Some (Json.String t) -> bad "record %d: unknown record type %S" at t
        | _ -> bad "record %d: missing \"type\" field" at)
      rest;
    Ok
      (List.rev_map
         (fun key -> replay_cell ~version key (Hashtbl.find cells key))
         !order)
  with Bad_trace m -> Error m

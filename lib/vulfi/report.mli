(** Plain-text rendering of campaign results in the shape of the paper's
    tables and figures. *)

(** ["42.0%"]-style percentage. *)
val pct : float -> string

(** One Fig 11-style row: SDC / Benign / Crash rates with the margin of
    error and campaign count. *)
val fig11_row : Campaign.result -> string

(** One Fig 12-style row: SDC rate and SDC-detection rate. *)
val fig12_row : Campaign.result -> string

(** One Fig 10-style row: scalar/vector composition per category. *)
val fig10_row :
  workload:string ->
  target:Vir.Target.t ->
  (Analysis.Sites.category * Analysis.Instmix.mix) list ->
  string

(** One Table I-style row. *)
val table1_row :
  workload:string ->
  language:string ->
  input:string ->
  target:Vir.Target.t ->
  dyn_instrs:int ->
  string

(** One sweep progress/ETA line, e.g.
    ["fig11: 3/12 cells done, 412 experiments/s, ETA 38 s"]. Total
    guards against the degenerate first tick: with [done_cells = 0] or
    [elapsed_s <= 0.0] the ETA renders as ["--"] and the rate clamps to
    0 instead of printing [inf]/[nan]. *)
val progress_line :
  label:string ->
  done_cells:int ->
  total_cells:int ->
  done_exps:int ->
  elapsed_s:float ->
  string

(** One campaign cell rebuilt from a trace. [rp_result] is re-aggregated
    from the per-experiment records alone (except [c_static_sites] and
    [c_avg_dynamic_instrs], which only the summary record carries);
    [rp_detectors] is the summary's record of whether detector hooks
    were attached; [rp_summary] says whether the trace's own summary
    record agreed with the recomputation. *)
type replay = {
  rp_result : Campaign.result;
  rp_detectors : bool;
  rp_summary : [ `Match | `Mismatch of string | `Missing ];
}

(** [replay_of_trace records] re-aggregates a parsed JSONL trace (header
    first) into one {!replay} per cell, in first-appearance order. The
    float arithmetic mirrors the campaign drivers' accumulation order
    exactly, so a replayed Fig 11/12 table is byte-identical to the live
    one. Returns [Error msg] on any schema violation. *)
val replay_of_trace : Json.t list -> (replay list, string) result

(** The header record's optional [executor] field (schema v4) — present
    only when detector hooks degraded the requested executor; [None]
    for older schemas or non-degraded traces. *)
val header_executor : Json.t list -> string option

(** Outcome classification of a fault-injection experiment (§IV-B):
    SDC when the faulty output differs from the fault-free output,
    Benign when they match, Crash on any trap (including hangs, which
    the execution budget converts into traps). *)

type output = {
  o_f32 : float array list;
  o_i32 : int array list;
  o_ret : Interp.Vvalue.t option;
}

let empty_output = { o_f32 = []; o_i32 = []; o_ret = None }

(* Whole-output comparison. With [tol = 0.] (the default) floats compare
   bit-exactly; a positive [tol] treats float elements within that
   relative distance as equal, modelling comparison of printed outputs
   rounded to a few significant digits. A purely relative test breaks
   down around zero (golden 0.0 vs faulty 1e-30 fails at any [tol]), so
   a positive [tol] also carries an absolute floor [abs_tol]: lanes
   closer than it are equal regardless of magnitude — a printed
   "0.000000" is indistinguishable from 1e-30. Integer outputs always
   compare exactly. *)
let output_equal ?(tol = 0.0) ?(abs_tol = 1e-12) (a : output) (b : output) =
  let lane_eq v w =
    if tol = 0.0 then Int64.bits_of_float v = Int64.bits_of_float w
    else if Int64.bits_of_float v = Int64.bits_of_float w then true
    else
      let diff = abs_float (v -. w) in
      diff <= abs_tol || diff <= tol *. max (abs_float v) (abs_float w)
  in
  let f32_eq x y =
    let n = Array.length x in
    n = Array.length y
    &&
    (* short-circuit on the first mismatching lane: this runs once per
       experiment on every output array *)
    let rec go i = i >= n || (lane_eq x.(i) y.(i) && go (i + 1)) in
    go 0
  in
  List.length a.o_f32 = List.length b.o_f32
  && List.for_all2 f32_eq a.o_f32 b.o_f32
  && a.o_i32 = b.o_i32
  && (match (a.o_ret, b.o_ret) with
     | None, None -> true
     | Some x, Some y -> Interp.Vvalue.equal x y
     | _ -> false)

type t =
  | Sdc
  | Benign
  | Crash of Interp.Trap.kind

let name = function
  | Sdc -> "SDC"
  | Benign -> "benign"
  | Crash _ -> "crash"

let to_string = function
  | Sdc -> "SDC"
  | Benign -> "benign"
  | Crash k -> Printf.sprintf "crash (%s)" (Interp.Trap.to_string k)

let classify ?(tol = 0.0) ?abs_tol ~golden
    ~(faulty : (output, Interp.Trap.kind) result) () : t =
  match faulty with
  | Error k -> Crash k
  | Ok out -> if output_equal ~tol ?abs_tol golden out then Benign else Sdc

(** One fault-injection experiment = two executions of the instrumented
    program on the same input (paper §IV-B): a fault-free profiling run
    and a faulty run with a single corruption at a chosen dynamic site. *)

(** Extra runtime surface (e.g. error detectors) attached to machines. *)
type hooks = {
  h_attach : Interp.Machine.state -> unit;
  h_flagged : unit -> bool;  (** did a detector fire during the run? *)
  h_reset : unit -> unit;
}

(** Hooks that do nothing and never flag. *)
val no_hooks : hooks

(** A workload built, instrumented for one site category, verified and
    compiled; ready for experiments. *)
type prepared = {
  p_workload : Workload.t;
  p_target : Vir.Target.t;
  p_category : Analysis.Sites.category;
  p_code : Interp.Compile.cmodule;
  p_instr : Instrument.t;
}

(** Whether [prepare] annotates the instrumented module with peephole
    fusion chains before compiling ({!Passes.Fuse}). Fusion preserves
    dynamic counts, fault-site numbering and traces exactly, so it
    defaults to [true] even inside campaigns; set the env var
    [VULFI_NO_FUSION=1] (read at startup) or clear the ref to compare
    fused against unfused runs. *)
val fusion_enabled : bool ref

(** Whether [prepare] runs the list scheduler ({!Passes.Schedule}) over
    the instrumented module before fusion. The scheduler only permutes
    pure, non-trapping instructions between fences (injection calls,
    memory ops, every other trap point), so campaign results and traces
    are byte-identical with it on or off; it defaults to [true] even
    inside campaigns. Set [VULFI_NO_SCHEDULE=1] (read at startup), pass
    [--no-schedule], or clear the ref to compare. *)
val schedule_enabled : bool ref

(** Whether {!faulty_run_pruned} actually prunes. Pruning only splices
    outcomes that are provably identical to running the suffix out, so
    results and traces are byte-identical with it on or off; it
    defaults to [true]. Set [VULFI_NO_PRUNE=1] (read at startup) or
    clear the ref to degrade the converge-pruned executor to plain
    fast-forward for cross-checks, mirroring
    {!fusion_enabled}/{!schedule_enabled}. *)
val prune_enabled : bool ref

(** [prepare ?transform w target category] builds the workload module,
    applies [transform] (e.g. detector insertion), selects the fault
    sites of [category], instruments and compiles (scheduling and
    annotating fusion chains first, per {!schedule_enabled} and
    {!fusion_enabled}). *)
val prepare :
  ?transform:(Vir.Vmodule.t -> Vir.Vmodule.t) ->
  Workload.t ->
  Vir.Target.t ->
  Analysis.Sites.category ->
  prepared

(** Result of the fault-free profiling run. *)
type golden = {
  g_input : int;
  g_output : Outcome.output;
  g_dyn_sites : int;  (** dynamic fault sites N *)
  g_dyn_instrs : int;  (** dynamic instructions, for budget + Table I *)
}

(** Raised when the fault-free run itself traps (a workload bug). *)
exception Golden_run_failed of string

(** Fault-free profiling run on input [input]. [respect_masks:false]
    reproduces a mask-oblivious injector for the ablation study. *)
val golden_run :
  ?hooks:hooks -> ?respect_masks:bool -> prepared -> input:int -> golden

(** A (cell, input) pair prepared for checkpointed execution: a machine
    with [w_setup] already applied, a snapshot of the post-setup memory
    image, and the golden-run results. Faulty runs restore the snapshot
    and re-arm the machine instead of rebuilding both — eliminating the
    golden half of every experiment after the first on each input. *)
type prepared_input = {
  pi_golden : golden;
  pi_machine : Interp.Machine.state;
  pi_snapshot : Interp.Memory.snapshot;  (** post-setup memory image *)
  pi_args : Interp.Vvalue.t list;
  pi_read_output : unit -> Outcome.output;
}

(** One-time per (cell, input) stage: build a machine, run [w_setup],
    snapshot, execute the golden run. The golden numbers are computed
    exactly as {!golden_run} computes them.
    @raise Golden_run_failed when the fault-free run traps. *)
val prepare_input :
  ?hooks:hooks ->
  ?respect_masks:bool ->
  prepared ->
  input:int ->
  prepared_input

type run_result = {
  r_outcome : Outcome.t;
  r_injection : Runtime.injection_record option;
  r_detected : bool;  (** a detector flagged the run *)
  r_dyn_instrs : int;  (** dynamic instructions of the faulty run *)
}

(** Dynamic-instruction budget of a faulty run: ten times the
    fault-free execution plus slack for tiny kernels, so a
    fault-induced loop terminates as an observable hang. The single
    definition shared by all three executors (legacy, checkpointed,
    fast-forward). *)
val fault_budget : golden -> int

(** Faulty run corrupting the value at 1-based [dynamic_site]; [seed]
    fixes the bit/pattern choice, making experiments reproducible. *)
val faulty_run :
  ?hooks:hooks ->
  ?respect_masks:bool ->
  ?fault_kind:Runtime.fault_kind ->
  prepared ->
  golden:golden ->
  dynamic_site:int ->
  seed:int ->
  run_result

(** Checkpointed variant of {!faulty_run}: restores [pi]'s post-setup
    snapshot and re-arms its machine instead of rebuilding them. The
    result is bit-identical to {!faulty_run} on the same (input,
    dynamic_site, seed). *)
val faulty_run_checkpointed :
  ?hooks:hooks ->
  ?respect_masks:bool ->
  ?fault_kind:Runtime.fault_kind ->
  prepared ->
  pi:prepared_input ->
  dynamic_site:int ->
  seed:int ->
  run_result

(** {1 Fast-forward execution}

    Full machine-state checkpoints at scheduled injection sites, laid
    during one instrumented golden replay; faulty runs resume from the
    nearest checkpoint at or before their site so only the
    post-injection suffix executes. Placement is a pure function of
    the seed schedule, preserving sequential/parallel determinism. *)

(** Default cap on checkpoints per (cell, input). *)
val default_max_checkpoints : int

(** [checkpoint_plan sites] is the ascending array of distinct
    positive scheduled sites, thinned to at most [max_checkpoints]
    (default {!default_max_checkpoints}) by keeping the rightmost site
    of each equal slice. Pure function of its input. *)
val checkpoint_plan : ?max_checkpoints:int -> int list -> int array

(** A prepared input plus its machine-state checkpoints, as
    [(site, checkpoint)] pairs sorted by site ascending. The
    checkpoints alias the prepared input's machine. *)
type ff_input = {
  ff_pi : prepared_input;
  ff_checkpoints : (int * Interp.Machine.checkpoint) array;
  ff_spans : Interp.Memory.spans array;
      (** aligned with [ff_checkpoints]: the golden run's accumulated
          dirty-span hulls from the post-setup image up to each
          checkpoint (convergence checks compare memory only over
          these plus the faulty run's own live spans) *)
}

(** One instrumented golden replay over [pi]'s machine capturing a
    checkpoint immediately before the inject call of each planned
    site (the call re-executes on resume). An empty [plan] skips the
    replay entirely.
    @raise Golden_run_failed when the replay traps. *)
val lay_checkpoints :
  ?hooks:hooks ->
  ?respect_masks:bool ->
  prepared ->
  pi:prepared_input ->
  plan:int array ->
  ff_input

(** Fast-forward variant of {!faulty_run_checkpointed}: resumes from
    the nearest checkpoint at or before [dynamic_site], falling back
    to a full checkpointed replay when none exists. Bit-identical to
    {!faulty_run} on the same (input, dynamic_site, seed). *)
val faulty_run_ff :
  ?hooks:hooks ->
  ?respect_masks:bool ->
  ?fault_kind:Runtime.fault_kind ->
  prepared ->
  ff:ff_input ->
  dynamic_site:int ->
  seed:int ->
  run_result

(** {1 Convergence-pruned execution}

    The fast-forward path skips the pre-injection prefix but runs every
    post-injection suffix to completion; most faults are masked long
    before that. {!faulty_run_pruned} runs the suffix under position
    tracking, compares the machine against the golden checkpoint at
    each post-injection checkpoint site
    ({!Interp.Machine.state_equal}: counters, call stack, live
    registers, dirty-span-restricted memory), and on a match
    terminates immediately, splicing the golden outcome — which is
    byte-identical to running the suffix out (DESIGN.md, convergence
    soundness). *)

(** Converge-pruned variant of {!faulty_run_ff}: same resume point and
    classification, with early termination at the first post-injection
    checkpoint site whose state matches the golden run's. Bit-identical
    to {!faulty_run} on the same (input, dynamic_site, seed). Delegates
    to {!faulty_run_ff} when {!prune_enabled} is false or no checkpoint
    site lies after [dynamic_site]. *)
val faulty_run_pruned :
  ?hooks:hooks ->
  ?respect_masks:bool ->
  ?fault_kind:Runtime.fault_kind ->
  prepared ->
  ff:ff_input ->
  dynamic_site:int ->
  seed:int ->
  run_result

(** Physical pruning telemetry (runs actually cut short, state
    comparisons performed) since the last {!reset_prune_stats}. Not
    part of campaign results or traces — those are pure functions of
    the seed schedule; this feeds the bench harness only. Thread-safe. *)
val prune_stats : unit -> int * int

val reset_prune_stats : unit -> unit

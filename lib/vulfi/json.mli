(** A small dependency-free JSON tree — encoder and parser for the
    campaign telemetry layer (JSONL traces, RESULTS_*.json exports).
    [Int] and [Float] are distinct constructors and survive a round
    trip: the encoder renders floats with a fractional part or exponent
    (integral values get a [".0"] suffix) and the parser returns [Int]
    only for literals without either. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering. Floats use the shortest of
    [%.15g]/[%.17g] that round-trips to the identical value.
    @raise Invalid_argument on NaN or infinite floats (JSON cannot
    represent them; map them to [Null] first). *)
val to_string : t -> string

exception Parse_error of string

(** Parse one JSON value (surrounding whitespace allowed).
    @raise Parse_error with a position-annotated message. *)
val of_string : string -> t

(** [member name j] is field [name] of object [j], if present. *)
val member : string -> t -> t option

val get_string : t -> string option
val get_int : t -> int option

(** [Int] values are accepted and converted. *)
val get_float : t -> float option

val get_bool : t -> bool option
val get_list : t -> t list option

(** A small dependency-free JSON tree with an encoder and a parser —
    just enough for the campaign telemetry layer (JSONL traces and the
    RESULTS_*.json exports). Integers and floats are kept distinct so a
    round trip preserves the constructor: [Int] never comes back as
    [Float] and vice versa. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

(* Canonical float rendering: the shortest of %.15g / %.17g that parses
   back to the identical float, with a ".0" suffix forced onto integral
   values so the parser returns a [Float] again. JSON has no encoding
   for NaN or infinities; callers must map those out (the trace layer
   emits [Null]). *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json: cannot encode non-finite float"
  else
    let s =
      let s15 = Printf.sprintf "%.15g" f in
      if float_of_string s15 = f then s15 else Printf.sprintf "%.17g" f
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  let rec go () =
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      go ()
    | _ -> ()
  in
  go ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail "at %d: expected %C, found %C" p.pos c c'
  | None -> fail "at %d: expected %C, found end of input" p.pos c

let parse_literal p word value =
  let n = String.length word in
  if
    p.pos + n <= String.length p.src
    && String.sub p.src p.pos n = word
  then begin
    p.pos <- p.pos + n;
    value
  end
  else fail "at %d: invalid literal" p.pos

(* Encode one Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_hex4 p =
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "at %d: invalid \\u escape" p.pos
  in
  if p.pos + 4 > String.length p.src then
    fail "at %d: truncated \\u escape" p.pos;
  let v =
    (hex p.src.[p.pos] lsl 12)
    lor (hex p.src.[p.pos + 1] lsl 8)
    lor (hex p.src.[p.pos + 2] lsl 4)
    lor hex p.src.[p.pos + 3]
  in
  p.pos <- p.pos + 4;
  v

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail "at %d: unterminated string" p.pos
    | Some '"' ->
      advance p;
      Buffer.contents buf
    | Some '\\' ->
      advance p;
      (match peek p with
      | Some '"' -> Buffer.add_char buf '"'; advance p
      | Some '\\' -> Buffer.add_char buf '\\'; advance p
      | Some '/' -> Buffer.add_char buf '/'; advance p
      | Some 'n' -> Buffer.add_char buf '\n'; advance p
      | Some 'r' -> Buffer.add_char buf '\r'; advance p
      | Some 't' -> Buffer.add_char buf '\t'; advance p
      | Some 'b' -> Buffer.add_char buf '\b'; advance p
      | Some 'f' -> Buffer.add_char buf '\012'; advance p
      | Some 'u' ->
        advance p;
        let u = parse_hex4 p in
        (* surrogate pair *)
        if u >= 0xD800 && u <= 0xDBFF then begin
          if
            p.pos + 2 <= String.length p.src
            && p.src.[p.pos] = '\\'
            && p.src.[p.pos + 1] = 'u'
          then begin
            p.pos <- p.pos + 2;
            let lo = parse_hex4 p in
            if lo >= 0xDC00 && lo <= 0xDFFF then
              add_utf8 buf
                (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
            else fail "at %d: invalid low surrogate" p.pos
          end
          else fail "at %d: lone high surrogate" p.pos
        end
        else add_utf8 buf u
      | _ -> fail "at %d: invalid escape" p.pos);
      go ()
    | Some c when Char.code c < 0x20 ->
      fail "at %d: raw control character in string" p.pos
    | Some c ->
      Buffer.add_char buf c;
      advance p;
      go ()
  in
  go ()

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let rec go () =
    match peek p with
    | Some ('0' .. '9' | '-' | '+') ->
      advance p;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance p;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "at %d: invalid number %S" start s
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
      (* out-of-range integer literal: fall back to float *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "at %d: invalid number %S" start s)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail "at %d: unexpected end of input" p.pos
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' -> String (parse_string p)
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else
      let rec items acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          items (v :: acc)
        | Some ']' ->
          advance p;
          List (List.rev (v :: acc))
        | _ -> fail "at %d: expected ',' or ']'" p.pos
      in
      items []
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else
      let field () =
        skip_ws p;
        let k = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          fields (kv :: acc)
        | Some '}' ->
          advance p;
          Obj (List.rev (kv :: acc))
        | _ -> fail "at %d: expected ',' or '}'" p.pos
      in
      fields []
  | Some c -> fail "at %d: unexpected character %C" p.pos c

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then
    fail "at %d: trailing characters after JSON value" p.pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_int = function Int n -> Some n | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List xs -> Some xs | _ -> None

(* numbers parsed without a fractional part come back as [Int] *)
let get_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

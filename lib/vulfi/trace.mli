(** Campaign telemetry: JSONL records written through an ordered sink.

    A trace is one [header] record, then one [experiment] record per
    injection experiment in (cell, campaign, experiment) order, and one
    [summary] record per cell. With [timings] off (the default) every
    record is a pure function of the configuration and seed schedule,
    so sequential and [-j N] runs produce byte-identical traces;
    [timings:true] adds a nondeterministic [wall_s] field to each
    experiment record. *)

(** Schema identifier stamped into the header record
    (["vulfi-trace-v4"]; v2 added schedule-derived [golden_runs] /
    [golden_reused] counters to the summary record, v3 added the
    fast-forward [checkpoints] / [ff_resumed] counters, v4 adds the
    convergence-pruning [pruned] / [prune_checks] counters and an
    optional [executor] header field recording a detector-degraded
    effective executor). *)
val schema : string

(** Previous schema identifiers, still accepted by [vulfi report]. *)
val schema_v1 : string

val schema_v2 : string

val schema_v3 : string

type sink

(** [make ~emit ~close ()] builds a sink over arbitrary output and
    immediately emits the header record. [executor] — the effective
    executor's name — is stamped into the header only when given;
    front-ends pass it only when detector hooks degraded the requested
    executor, so non-degraded traces stay byte-identical across all
    four executors. *)
val make :
  ?timings:bool -> ?executor:string -> emit:(Json.t -> unit) ->
  close:(unit -> unit) -> unit -> sink

(** Sink appending one line per record to a channel; [close] flushes
    but does not close the channel. *)
val to_channel : ?timings:bool -> ?executor:string -> out_channel -> sink

(** Sink writing to a fresh file; [close] closes it. *)
val to_file : ?timings:bool -> ?executor:string -> string -> sink

(** Sink accumulating lines in a buffer (used by tests). *)
val to_buffer : ?timings:bool -> ?executor:string -> Buffer.t -> sink

val emit : sink -> Json.t -> unit
val close : sink -> unit

(** Whether this sink wants per-experiment wall times. *)
val timings : sink -> bool

(** One experiment record. [golden_sites] is the fault-free run's
    dynamic site count N; [wall_s] is included only when given (the
    drivers pass it only for [timings] sinks). *)
val experiment_record :
  workload:string ->
  target:Vir.Target.t ->
  category:Analysis.Sites.category ->
  campaign:int ->
  experiment:int ->
  input:int ->
  golden_sites:int ->
  result:Experiment.run_result ->
  ?wall_s:float ->
  unit ->
  Json.t

(** One per-cell summary record mirroring [Campaign.result]
    field-by-field ([sdc_rates] in campaign order; a non-finite
    [margin] becomes [null]). [detectors] records whether detector
    hooks were attached, so a replay knows to render a Fig 12 row even
    for a cell where no detector fired. *)
val summary_record :
  workload:string ->
  target:Vir.Target.t ->
  category:Analysis.Sites.category ->
  detectors:bool ->
  campaigns:int ->
  sdc_rates:float list ->
  n_experiments:int ->
  n_sdc:int ->
  n_benign:int ->
  n_crash:int ->
  n_detected:int ->
  n_detected_sdc:int ->
  margin:float ->
  near_normal:bool ->
  static_sites:int ->
  avg_dyn_sites:float ->
  avg_dyn_instrs:float ->
  golden_runs:int ->
  golden_reused:int ->
  checkpoints:int ->
  ff_resumed:int ->
  pruned:int ->
  prune_checks:int ->
  Json.t

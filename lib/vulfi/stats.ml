(** Campaign statistics (paper §IV-D): each campaign's SDC rate is one
    random sample; campaigns are run until the sample distribution is
    near normal and the 95% t-based margin of error falls below ±3%. *)

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Sample standard deviation (n-1 denominator). *)
let stddev xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    in
    sqrt (ss /. float_of_int (n - 1))

(* Two-sided 95% critical values of Student's t distribution. *)
let t95 ~df =
  let table =
    [|
      12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262;
      2.228; 2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101;
      2.093; 2.086; 2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052;
      2.048; 2.045; 2.042;
    |]
  in
  if df <= 0 then infinity
  else if df <= 30 then table.(df - 1)
    (* Above the exact table each bucket uses the critical value at its
       SMALLEST df — the largest value in the bucket — so the margin of
       error is never understated and the §IV-D stopping rule can only
       err conservative. (Using the bucket's largest-df value, e.g.
       t(40) = 2.021 for df 31–40 where t(31) ≈ 2.040, let campaigns
       terminate early.) *)
  else if df <= 40 then 2.040 (* t(31) *)
  else if df <= 60 then 2.020 (* t(41) *)
  else if df <= 120 then 2.000 (* t(61) *)
  else 1.980 (* t(121) *)

(* Margin of error of the sample mean at 95% confidence:
   t * s / sqrt(n) — the standard formula the paper cites from
   elementary statistics. *)
let margin_of_error xs =
  let n = List.length xs in
  if n < 2 then infinity
  else t95 ~df:(n - 1) *. stddev xs /. sqrt (float_of_int n)

(* 95% confidence interval on the sample mean as (mean, margin). The
   small-sample edge is explicit rather than falling out of float
   arithmetic: with n < 2 no sample variance exists, so the margin is
   [infinity] (every interval is plausible) — it must never be 0.0 or
   nan, which would let a one-campaign cell satisfy the §IV-D stopping
   rule. n = 2 is the first finite interval: df 1, t = 12.706. *)
let confidence xs =
  let n = List.length xs in
  if n < 2 then (mean xs, infinity)
  else (mean xs, t95 ~df:(n - 1) *. stddev xs /. sqrt (float_of_int n))

(* Sample skewness (g1). *)
let skewness xs =
  let n = float_of_int (List.length xs) in
  if n < 3.0 then 0.0
  else
    let m = mean xs in
    let m2 = List.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs /. n in
    let m3 = List.fold_left (fun a x -> a +. ((x -. m) ** 3.0)) 0.0 xs /. n in
    if m2 = 0.0 then 0.0 else m3 /. (m2 ** 1.5)

(* Excess kurtosis (g2). *)
let excess_kurtosis xs =
  let n = float_of_int (List.length xs) in
  if n < 4.0 then 0.0
  else
    let m = mean xs in
    let m2 = List.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs /. n in
    let m4 = List.fold_left (fun a x -> a +. ((x -. m) ** 4.0)) 0.0 xs /. n in
    if m2 = 0.0 then 0.0 else (m4 /. (m2 *. m2)) -. 3.0

(* Crude "normal or near normal" test on the campaign samples: small
   skew and small excess kurtosis. A constant sample (stddev 0) counts
   as degenerate-normal. *)
let near_normal xs =
  List.length xs >= 3
  && abs_float (skewness xs) <= 1.0
  && abs_float (excess_kurtosis xs) <= 2.0

(** Campaign statistics (paper §IV-D): sample mean/deviation, Student-t
    95% margins, and a crude normality screen. *)

(** Arithmetic mean; 0 for the empty list. *)
val mean : float list -> float

(** Sample standard deviation (n-1 denominator); 0 for n < 2. *)
val stddev : float list -> float

(** Two-sided 95% critical value of Student's t with [df] degrees of
    freedom. Exact to df 30; beyond the table each bucket (31–40,
    41–60, 61–120, 121+) uses the critical value at its {e smallest}
    df — the largest value in the bucket — so the margin of error is
    never understated and the §IV-D stopping rule can only err
    conservative. [infinity] for df <= 0. *)
val t95 : df:int -> float

(** 95% margin of error of the sample mean: t * s / sqrt(n).
    [infinity] for fewer than two samples. *)
val margin_of_error : float list -> float

(** [(mean, margin)] of the 95% confidence interval on the sample mean.
    Small samples are handled explicitly, never via float fallout:
    n = 0 gives [(0.0, infinity)], n = 1 gives [(x, infinity)] (no
    sample variance exists — the margin must not collapse to 0 or nan,
    which would let a one-campaign cell pass the stopping rule), and
    n = 2 is the first finite interval (df 1, t = 12.706). *)
val confidence : float list -> float * float

(** Sample skewness (g1). *)
val skewness : float list -> float

(** Sample excess kurtosis (g2). *)
val excess_kurtosis : float list -> float

(** "Normal or near normal" screen used by the campaign stop rule:
    at least 3 samples, |skewness| <= 1, |excess kurtosis| <= 2. *)
val near_normal : float list -> bool

type pass = { p_name : string; p_run : Vir.Vmodule.t -> int }

let constfold = { p_name = "constfold"; p_run = Constfold.run_module }
let schedule = { p_name = "schedule"; p_run = Schedule.run_module }
let fuse = { p_name = "fuse"; p_run = Fuse.run_module }
let default = [ schedule; fuse ]
let optimizing = [ constfold; schedule; fuse ]

let run ?(verify = true) ?(passes = default) (m : Vir.Vmodule.t) :
    (string * int) list =
  List.map
    (fun p ->
      let n = p.p_run m in
      if verify then Vir.Verify.check_module m;
      (p.p_name, n))
    passes

(** Peephole fusion annotation pass.

    Finds legal straight-line chains ({!Analysis.Chains}) and records
    them on each function's [fuse_chains] field for the interpreter's
    threading stage to lower as single fused kernels. The pass rewrites
    no IR — it only annotates — so it preserves semantics, dynamic
    instruction counts, fault-site numbering and traces exactly; a
    backend that ignores the annotation executes identically. *)

(** Annotate one function; returns the number of chains found. Any
    previous annotation is replaced. *)
val run_func : Vir.Func.t -> int

(** Annotate every function; returns the total chain count. *)
val run_module : Vir.Vmodule.t -> int

(** Remove all annotations (the differential tests compare a fused
    module against the same module with annotations cleared). *)
val clear_module : Vir.Vmodule.t -> unit

(** Per-rule chain counts over a whole module, for pipeline statistics
    and the bench coverage counters. Recomputed from {!Analysis.Chains};
    does not modify annotations. *)
val rule_stats : Vir.Vmodule.t -> (string * int) list

(** [(chain length, count)] over the module's current annotations,
    ascending by length — the fusion-stats chain-length histogram. *)
val length_hist : Vir.Vmodule.t -> (int * int) list

(** The optimisation pass pipeline: an ordered registry of named passes
    with per-pass statistics and verification.

    Two pipelines ship:

    - {!default} — the production pipeline ([schedule] then [fuse]).
      Every pass in it preserves semantics {e and} observable execution
      shape (dynamic instruction counts, fault-site numbering, traces),
      so the campaign path can run it unconditionally: results stay
      byte-identical with the pipeline on or off. The scheduler only
      permutes pure instructions between fences (DESIGN.md, "Scheduler
      legality"), which changes no observable either.
    - {!optimizing} — [constfold], [schedule], then [fuse]: the "-O"
      pipeline for the CLI [opt]/[compile] flow and the differential
      fuzzers. Constant folding rewrites the IR (fewer dynamic
      instructions), so this one is never applied inside
      fault-injection campaigns. *)

type pass = {
  p_name : string;
  p_run : Vir.Vmodule.t -> int;  (** returns a rewrite/annotation count *)
}

val constfold : pass
val schedule : pass
val fuse : pass

val default : pass list
val optimizing : pass list

(** Run the passes in order, verifying the module after each one
    ([verify] defaults to [true]); returns [(pass name, count)] per
    pass, in execution order.
    @raise Vir.Verify.Invalid_ir if a pass breaks the module. *)
val run :
  ?verify:bool -> ?passes:pass list -> Vir.Vmodule.t -> (string * int) list

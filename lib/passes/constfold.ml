(** Constant folding.

    Folds pure instructions whose operands are all constants, reusing
    the interpreter's lane evaluators so folding and execution cannot
    disagree. Operations that would trap at run time (constant division
    by zero) are left in place — the fault-injection study depends on
    traps staying observable. Folding iterates to a fixpoint and
    finishes with a DCE sweep. *)

open Vir

let value_of_operand = function
  | Instr.Imm c -> Some (Interp.Vvalue.of_const c)
  | Instr.Reg _ -> None

let both a b =
  match (value_of_operand a, value_of_operand b) with
  | Some x, Some y -> Some (x, y)
  | _ -> None

let map2i f (a : Interp.Ilanes.t) (b : Interp.Ilanes.t) =
  Interp.Ilanes.init (Interp.Ilanes.length a) (fun i ->
      f (Interp.Ilanes.get a i) (Interp.Ilanes.get b i))

let lanes_exist p (a : Interp.Ilanes.t) =
  Interp.Ilanes.fold_left (fun acc x -> acc || p x) false a

(* Evaluate one instruction if all operands are constant and the
   operation cannot trap. Returns the folded constant. *)
let eval_instr (i : Instr.t) : Const.t option =
  let open Interp in
  match i.Instr.op with
  | Instr.Ibinop (k, a, b) -> (
    match both a b with
    | Some (Vvalue.I (s, xa), Vvalue.I (_, xb)) -> (
      let trappy =
        match k with
        | Instr.Sdiv | Instr.Srem | Instr.Udiv | Instr.Urem ->
          lanes_exist (Int64.equal 0L) xb
          || (s = Vtype.I64
             && lanes_exist (Int64.equal Int64.min_int) xa
             && lanes_exist (Int64.equal (-1L)) xb)
        | _ -> false
      in
      if trappy then None
      else
        try
          Some
            (Vvalue_const.to_const
               (Vvalue.I (s, map2i (Machine.eval_ibinop_lane k s) xa xb)))
        with Trap.Trap _ -> None)
    | _ -> None)
  | Instr.Fbinop (k, a, b) -> (
    match both a b with
    | Some (Vvalue.F (s, xa), Vvalue.F (_, xb)) ->
      Some
        (Vvalue_const.to_const
           (Vvalue.F
              ( s,
                Array.init (Array.length xa) (fun ix ->
                    Machine.eval_fbinop_lane k s xa.(ix) xb.(ix)) )))
    | _ -> None)
  | Instr.Icmp (p, a, b) -> (
    match both a b with
    | Some (Vvalue.I (s, xa), Vvalue.I (_, xb)) ->
      Some
        (Vvalue_const.to_const
           (Vvalue.I (Vtype.I1, map2i (Machine.eval_icmp_lane p s) xa xb)))
    | _ -> None)
  | Instr.Fcmp (p, a, b) -> (
    match both a b with
    | Some (Vvalue.F (_, xa), Vvalue.F (_, xb)) ->
      Some
        (Vvalue_const.to_const
           (Vvalue.I
              ( Vtype.I1,
                Interp.Ilanes.init (Array.length xa) (fun ix ->
                    Machine.eval_fcmp_lane p xa.(ix) xb.(ix)) )))
    | _ -> None)
  | Instr.Select (c, a, b) -> (
    match value_of_operand c with
    | Some cv when Vvalue.lanes cv = 1 -> (
      (* constant scalar condition: pick an arm even if non-constant *)
      match if Vvalue.as_bool cv then a else b with
      | Instr.Imm k -> Some k
      | Instr.Reg _ -> None)
    | _ -> None)
  | Instr.Cast (k, a) -> (
    match value_of_operand a with
    | Some v -> (
      try Some (Vvalue_const.to_const (Machine.eval_cast k i.Instr.ty v))
      with Invalid_argument _ -> None)
    | _ -> None)
  | Instr.Extractelement (v, ix) -> (
    match both v ix with
    | Some (vv, iv) ->
      let k = Int64.to_int (Vvalue.as_int iv) in
      if k >= 0 && k < Vvalue.lanes vv then
        Some (Vvalue_const.to_const (Vvalue.extract vv k))
      else None
    | None -> None)
  | Instr.Insertelement (v, e, ix) -> (
    match (value_of_operand v, value_of_operand e, value_of_operand ix) with
    | Some vv, Some ev, Some iv ->
      let k = Int64.to_int (Vvalue.as_int iv) in
      if k >= 0 && k < Vvalue.lanes vv then
        Some (Vvalue_const.to_const (Vvalue.insert vv k ev))
      else None
    | _ -> None)
  | Instr.Shufflevector (a, b, mask) -> (
    match both a b with
    | Some (va, vb) when
        (* A mask index outside [0, 2n) is malformed IR (the verifier
           rejects it); the folder must leave the instruction in place
           rather than die on the extract, like the guarded
           Extractelement/Insertelement arms above. *)
        Array.for_all
          (fun ix -> ix >= 0 && ix < Vvalue.lanes va + Vvalue.lanes vb)
          mask ->
      let n = Vvalue.lanes va in
      let lane ix = if ix < n then Vvalue.extract va ix else Vvalue.extract vb (ix - n) in
      let parts = Array.map lane mask in
      (* reassemble *)
      let folded =
        match va with
        | Vvalue.I (s, _) ->
          Vvalue.I
            ( s,
              Interp.Ilanes.init (Array.length parts) (fun k ->
                  match parts.(k) with
                  | Vvalue.I (_, x) when Interp.Ilanes.length x = 1 ->
                    Interp.Ilanes.unsafe_get x 0
                  | _ -> assert false) )
        | Vvalue.F (s, _) ->
          Vvalue.F
            ( s,
              Array.map
                (fun p ->
                  match p with Vvalue.F (_, [| x |]) -> x | _ -> assert false)
                parts )
      in
      Some (Vvalue_const.to_const folded)
    | Some _ | None -> None)
  | _ -> None

(* One folding sweep over a function; returns number of folds. Folded
   instructions are deleted immediately (they are pure and all their
   uses were redirected to the constant). *)
let fold_func_once (f : Func.t) : int =
  let folded = ref 0 in
  List.iter
    (fun b ->
      (* Hash-set of folded register ids: the dead-instruction filter
         below is a membership test per instruction, so a sweep over a
         large (e.g. fused-superblock) function stays O(n). *)
      let dead = Hashtbl.create 16 in
      List.iter
        (fun (i : Instr.t) ->
          if Instr.defines i then
            match eval_instr i with
            | Some c ->
              incr folded;
              Func.replace_uses f ~reg:i.Instr.id ~by:(Instr.Imm c);
              Hashtbl.replace dead i.Instr.id ()
            | None -> ())
        b.Block.instrs;
      if Hashtbl.length dead > 0 then
        b.Block.instrs <-
          List.filter
            (fun (i : Instr.t) ->
              not (Instr.defines i && Hashtbl.mem dead i.Instr.id))
            b.Block.instrs)
    f.Func.blocks;
  !folded

(* Fold to fixpoint, then sweep dead definitions. Returns the total
   number of folds performed. *)
let run_func (f : Func.t) : int =
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let n = fold_func_once f in
    total := !total + n;
    if n = 0 then continue_ := false
  done;
  if !total > 0 then ignore (Dce.run_func f);
  !total

let run_module (m : Vmodule.t) : int =
  let n = List.fold_left (fun acc f -> acc + run_func f) 0 m.Vmodule.funcs in
  if n > 0 then Verify.check_module m;
  n

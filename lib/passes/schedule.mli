(** The list-scheduling pass (see {!Analysis.Sched}): reorders pure
    instructions inside fence-delimited block regions so single-use
    chains become adjacent for the fusion pass. Returns the number of
    instructions moved. Campaign-default; disabled by [--no-schedule] /
    [VULFI_NO_SCHEDULE=1] (see {!Vulfi.Experiment.schedule_enabled}). *)

val run_func : Vir.Func.t -> int
val run_module : Vir.Vmodule.t -> int

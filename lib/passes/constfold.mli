(** Constant folding: folds pure instructions with all-constant
    operands, reusing the interpreter's lane evaluators so folding and
    execution cannot disagree. Operations that would trap at run time
    (constant division by zero) are deliberately left in place — the
    fault-injection study depends on traps staying observable. *)

(** One folding sweep over a function (no fixpoint, no DCE); returns
    the number of folds. Exposed so tests can pin per-sweep counts. *)
val fold_func_once : Vir.Func.t -> int

(** Fold one function to fixpoint (with a final DCE sweep); returns the
    number of folds performed. *)
val run_func : Vir.Func.t -> int

(** Fold every function; re-verifies if anything changed. *)
val run_module : Vir.Vmodule.t -> int

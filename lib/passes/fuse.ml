open Vir

let run_func (f : Func.t) : int =
  let chains = Analysis.Chains.find f in
  f.Func.fuse_chains <-
    List.map
      (fun (c : Analysis.Chains.chain) ->
        {
          Func.fc_block = c.Analysis.Chains.c_block;
          fc_start = c.Analysis.Chains.c_start;
          fc_len = c.Analysis.Chains.c_len;
        })
      chains;
  List.length chains

let run_module (m : Vmodule.t) : int =
  List.fold_left (fun acc f -> acc + run_func f) 0 m.Vmodule.funcs

let clear_module (m : Vmodule.t) : unit =
  List.iter (fun (f : Func.t) -> f.Func.fuse_chains <- []) m.Vmodule.funcs

(* (chain length, count) over the module's current annotations,
   ascending by length — the fusion-stats chain-length histogram. *)
let length_hist (m : Vmodule.t) : (int * int) list =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (c : Func.fuse_chain) ->
          let l = c.Func.fc_len in
          Hashtbl.replace counts l
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        f.Func.fuse_chains)
    m.Vmodule.funcs;
  Hashtbl.fold (fun l n acc -> (l, n) :: acc) counts [] |> List.sort compare

let rule_stats (m : Vmodule.t) : (string * int) list =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun f ->
      List.iter
        (fun (c : Analysis.Chains.chain) ->
          let k = Analysis.Chains.rule_name c.Analysis.Chains.c_rule in
          Hashtbl.replace counts k
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
        (Analysis.Chains.find f))
    m.Vmodule.funcs;
  List.filter_map
    (fun r ->
      let k = Analysis.Chains.rule_name r in
      Option.map (fun n -> (k, n)) (Hashtbl.find_opt counts k))
    Analysis.Chains.all_rules

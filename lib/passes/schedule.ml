(* The list-scheduling pass: a thin module-level driver over
   Analysis.Sched. Runs before fusion so Analysis.Chains sees the
   scheduled (chain-adjacent) order. In campaigns it runs *after*
   instrumentation — fault-site enumeration happens on the
   pre-instrumentation module and every injected [__vulfi_*] call is a
   fence, so scheduling cannot perturb site numbering, dynamic site
   order, or anything else a trace records (see DESIGN.md, "Scheduler
   legality"). *)

let run_func (f : Vir.Func.t) : int = Analysis.Sched.schedule_func f

let run_module (m : Vir.Vmodule.t) : int =
  List.fold_left (fun acc f -> acc + run_func f) 0 m.Vir.Vmodule.funcs

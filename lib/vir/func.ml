(** VIR functions: parameters, an entry-first list of basic blocks, and a
    register-id allocator shared by all passes that add instructions. *)

type param = { pname : string; pty : Vtype.t; preg : Instr.reg }

(* Structured metadata recorded by the mini-ISPC code generator for each
   lowered [foreach] loop, consumed (and cross-checked) by the detector
   synthesis pass. *)
type foreach_meta = {
  fm_full_body : string;      (** label of the [foreach_full_body] block *)
  fm_exit : string;           (** label the full body exits to *)
  fm_new_counter : Instr.reg; (** register holding [new_counter] *)
  fm_aligned_end : Instr.reg; (** register holding [aligned_end] *)
  fm_vl : int;                (** vector length of the lowering *)
}

(* Advisory fusion annotation written by the fusion pass and consumed by
   the interpreter's threading stage: [(label, start, len)] marks [len]
   adjacent instructions of block [label], starting at index [start]
   into the block's non-phi, non-terminator body, whose intermediate
   values are single-use and may be lowered as one fused kernel. The
   annotation carries no semantics — a backend that ignores it (or finds
   a stale entry) simply executes the instructions one by one. *)
type fuse_chain = { fc_block : string; fc_start : int; fc_len : int }

type t = {
  fname : string;
  params : param list;
  ret_ty : Vtype.t;
  mutable blocks : Block.t list;  (** entry block first *)
  mutable next_reg : Instr.reg;
  mutable next_label : int;
  mutable foreach_meta : foreach_meta list;
  mutable fuse_chains : fuse_chain list;
}

let create ~name ~params ~ret_ty =
  let plist =
    List.mapi (fun i (pname, pty) -> { pname; pty; preg = i }) params
  in
  {
    fname = name;
    params = plist;
    ret_ty;
    blocks = [];
    next_reg = List.length plist;
    next_label = 0;
    foreach_meta = [];
    fuse_chains = [];
  }

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let fresh_label f base =
  let n = f.next_label in
  f.next_label <- n + 1;
  Printf.sprintf "%s%d" base n

let entry f =
  match f.blocks with
  | [] -> invalid_arg ("Func.entry: empty function " ^ f.fname)
  | b :: _ -> b

let find_block f label =
  match List.find_opt (fun b -> b.Block.label = label) f.blocks with
  | Some b -> b
  | None ->
    invalid_arg (Printf.sprintf "Func.find_block: %%%s in %s" label f.fname)

let add_block f b = f.blocks <- f.blocks @ [ b ]

let iter_instrs f g =
  List.iter (fun b -> List.iter (g b) b.Block.instrs) f.blocks

let fold_instrs f g acc =
  List.fold_left
    (fun acc b -> List.fold_left (fun acc i -> g acc b i) acc b.Block.instrs)
    acc f.blocks

(* All instructions, in block order. *)
let all_instrs f =
  List.concat_map (fun b -> b.Block.instrs) f.blocks

(* Map register id -> defining instruction. *)
let def_table f =
  let tbl = Hashtbl.create 64 in
  iter_instrs f (fun _ i ->
      if Instr.defines i then Hashtbl.replace tbl i.Instr.id i);
  tbl

(* Map block label -> predecessor labels. *)
let predecessors f =
  let tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace tbl b.Block.label []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun succ ->
          let old = try Hashtbl.find tbl succ with Not_found -> [] in
          Hashtbl.replace tbl succ (b.Block.label :: old))
        (Block.successors b))
    f.blocks;
  tbl

(* Type of register [r]: a parameter or an instruction result. *)
let reg_ty f r =
  match List.find_opt (fun p -> p.preg = r) f.params with
  | Some p -> Some p.pty
  | None ->
    fold_instrs f
      (fun acc _ i ->
        if Instr.defines i && i.Instr.id = r then Some i.Instr.ty else acc)
      None

(* Replace every use of register [reg] by operand [by], across all
   blocks, optionally skipping instruction ids in [except]. The skip set
   is hashed once up front so a sweep over a large function costs O(n),
   not O(n * |except|). *)
let replace_uses ?(except = []) f ~reg ~by =
  match except with
  | [] ->
    List.iter
      (fun b -> Block.map_instrs b (Instr.replace_reg ~reg ~by))
      f.blocks
  | except ->
    let skip = Hashtbl.create (List.length except) in
    List.iter (fun id -> Hashtbl.replace skip id ()) except;
    List.iter
      (fun b ->
        Block.map_instrs b (fun i ->
            if Hashtbl.mem skip i.Instr.id then i
            else Instr.replace_reg ~reg ~by i))
      f.blocks
